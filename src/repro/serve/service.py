"""The multi-process sharded prediction service behind ``repro serve http``.

Topology::

                      POST /v1/predict (repro.serve.request/1)
                                  |
    client ── HTTP ──► PredictionService (stdlib ThreadingHTTPServer)
                                  |  ShardPlan.route() per article
                    ┌─────────────┼─────────────┐
                 shard 0       shard 1       shard k        (request queues)
                 worker(s)     worker(s)     worker(s)      (OS processes)
                    └─────────────┼─────────────┘
                         shared response queue
                                  |
                        collector thread → pending futures
                                  |
                      repro.serve.response/1 to the client

Every worker holds a model replica loaded from the same directory
checkpoint, with its GDU diffusion context restricted to its shard's
creator/subject communities (:class:`repro.serve.ShardPlan`). The parent
routes each article of a request to its shard, fans the request out to the
least-loaded replica per shard, and reassembles predictions in input order.

Admission control is a bounded per-worker in-flight budget
(``max_queue_depth``): when the budget of any needed worker is exhausted
the request is rejected *before* anything is enqueued, surfacing as HTTP
429 with a ``Retry-After`` header — queues cannot grow without bound.

Observability is the PR 4 stack wired in directly: the service registry
feeds ``GET /metrics`` (Prometheus text format) and an optional
:class:`repro.obs.PeriodicExporter`; an optional
:class:`repro.obs.SloMonitor` sees every request's latency, success/error
flag and the global in-flight depth, and its breaches flip
``GET /v1/healthz`` to 503 — the load-balancer eject signal. With
``profile_hz`` set, every process (front-end and workers) also runs a
continuous :class:`repro.obs.SamplingProfiler`; ``GET
/debug/profile?seconds=N`` windows the counters into one merged
per-shard flamegraph (see :meth:`PredictionService.capture_profile`).
"""

from __future__ import annotations

import itertools
import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Sequence
from urllib.parse import parse_qs

from ..obs import get_logger, render_prometheus
from ..obs.context import (
    REQUEST_ID_HEADER,
    TraceContext,
    extract_context,
    new_request_id,
    reset_context,
    set_context,
)
from ..obs.drift import DRIFT_BASELINE_FILE
from ..obs.flame import (
    DEFAULT_HZ,
    Profile,
    SamplingProfiler,
    merge_profiles,
    render_flamegraph_svg,
)
from ..obs.tracing import NULL_SPAN, TraceStore, Tracer
from .checkpoint import checkpoint_digest
from .metrics import ServingMetrics
from .protocol import (
    PredictRequest,
    PredictResponse,
    ProtocolError,
    error_body,
)
from .shard import ShardPlan
from .worker import WorkerHandle, spawn_worker


class ServiceOverloaded(RuntimeError):
    """Admission control rejected the request (HTTP 429)."""


class ServiceUnavailable(RuntimeError):
    """A needed worker is dead or the pool is not ready (HTTP 503)."""


class ServiceTimeout(RuntimeError):
    """A dispatched request missed the deadline (HTTP 504)."""


class _PendingCall:
    """Future for one shard-group dispatch."""

    __slots__ = ("event", "predictions", "stats", "error")

    def __init__(self):
        self.event = threading.Event()
        self.predictions: Optional[List[Dict]] = None
        self.stats: Dict = {}
        self.error: Optional[str] = None


class _ProfilePending:
    """Future for one worker's profile snapshot (control plane)."""

    __slots__ = ("event", "payload")

    def __init__(self):
        self.event = threading.Event()
        self.payload: Optional[Dict] = None


def _article_payload(article) -> Dict:
    return {
        "article_id": article.article_id,
        "text": article.text,
        "creator_id": article.creator_id,
        "subject_ids": list(article.subject_ids),
    }


class PredictionService:
    """Worker-pool prediction service with a versioned HTTP API.

    Parameters
    ----------
    checkpoint:
        Detector checkpoint directory; every worker loads its own replica.
    workers:
        Pool size (>= ``shards``); workers are dealt round-robin over
        shards so every shard has at least one replica.
    shards:
        News-HSN partitions (1 = no partitioning, full context per worker).
    host / port:
        HTTP bind address; ``port=0`` picks an ephemeral port.
    max_batch_size / max_wait:
        Per-worker dynamic batching knobs (see :mod:`repro.serve.worker`).
    max_queue_depth:
        Admission control: in-flight request budget per worker; beyond it
        requests get 429 + ``Retry-After``.
    request_timeout:
        Seconds a dispatched request may wait before 504.
    feature_cache_size:
        Per-worker LRU text-feature cache entries.
    slo:
        Optional :class:`repro.obs.SloMonitor`; fed latency/error/depth
        signals (and, when drift monitoring is on, the per-shard class
        PSI under ``drift_class_psi``), drives ``/v1/healthz``.
    trace_dir:
        Optional directory for distributed request traces. When set, every
        ``predict`` call opens a ``serve.request`` root span, propagates a
        :class:`repro.obs.TraceContext` to the workers, and a
        :class:`repro.obs.TraceStore` merges front-end + worker spans into
        one ``<trace_id>.jsonl`` file (schema ``repro.obs.trace/1``).
    drift_baseline:
        Optional path to a ``repro.obs.drift_baseline/1`` JSON profile.
        Each worker arms a :class:`repro.obs.DriftMonitor` against it and
        ships window summaries back with every result; sustained breach on
        any shard degrades ``/v1/healthz``.
    drift_threshold / drift_window / drift_min_samples:
        Worker-side :class:`repro.obs.DriftMonitor` knobs.
    profile_hz:
        When set, continuous profiling: every worker runs a
        :class:`repro.obs.SamplingProfiler` at this rate from warm-up on,
        and the front-end runs one (started post-fork) covering routing,
        admission and HTTP threads. :meth:`capture_profile` (and the
        ``GET /debug/profile?seconds=N`` endpoint) then windows the
        continuous counters; when unset, captures arm temporary samplers
        for just the requested window.
    """

    def __init__(
        self,
        checkpoint,
        *,
        workers: int = 2,
        shards: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch_size: int = 32,
        max_wait: float = 0.002,
        max_queue_depth: int = 32,
        request_timeout: float = 30.0,
        feature_cache_size: int = 2048,
        warmup_timeout: float = 120.0,
        slo=None,
        trace_dir=None,
        drift_baseline=None,
        drift_threshold: float = 0.25,
        drift_window: int = 1024,
        drift_min_samples: int = 50,
        profile_hz: Optional[float] = None,
        mp_context=None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if workers < shards:
            raise ValueError(
                f"workers ({workers}) must be >= shards ({shards}) so every "
                "shard has a replica"
            )
        self.checkpoint = str(checkpoint)
        self.num_workers = workers
        self.num_shards = shards
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait
        self.max_queue_depth = max_queue_depth
        self.request_timeout = request_timeout
        self.feature_cache_size = feature_cache_size
        self.warmup_timeout = warmup_timeout
        self.slo = slo
        self._mp_context = mp_context
        self._host_arg, self._port_arg = host, port
        self._log = get_logger("serve.service")
        self._drift_log = get_logger("obs.drift")

        self.trace_store: Optional[TraceStore] = None
        self._tracer: Optional[Tracer] = None
        if trace_dir is not None:
            self.trace_store = TraceStore(trace_dir)
            # Wall-clock spans: worker spans from other processes must land
            # on the same axis, and perf_counter is per-process.
            self._tracer = Tracer(
                keep=False, sink=self.trace_store.sink, clock=time.time
            )
        if drift_baseline == "auto":
            # Use the checkpoint's own profile when it shipped one; old
            # checkpoints simply serve without drift monitoring.
            candidate = Path(self.checkpoint) / DRIFT_BASELINE_FILE
            drift_baseline = candidate if candidate.exists() else None
        self.drift_baseline = str(drift_baseline) if drift_baseline else None
        self.drift_threshold = drift_threshold
        self.drift_window = drift_window
        self.drift_min_samples = drift_min_samples
        #: latest drift window summary per shard (collector-maintained)
        self._drift_status: Dict[int, Dict] = {}
        self._drift_breached: Dict[int, bool] = {}

        self.metrics = ServingMetrics()
        registry = self.metrics.registry
        self._http_requests = registry.counter("serve.http_requests")
        self._http_rejected = registry.counter("serve.http_rejected")
        self._http_errors = registry.counter("serve.http_errors")
        self._inflight_gauge = registry.gauge("serve.inflight")

        self.plan = (
            ShardPlan.single()
            if shards == 1
            else ShardPlan.from_checkpoint(self.checkpoint, shards)
        )
        self.model_digest = checkpoint_digest(self.checkpoint)

        self._workers: List[WorkerHandle] = []
        self._shard_workers: Dict[int, List[WorkerHandle]] = {}
        self._responses = None
        self._collector: Optional[threading.Thread] = None
        self._pending: Dict[int, _PendingCall] = {}
        # Workers are forked in start() before any request is in flight, so
        # this lock is never held at fork time and children never touch it.
        self._lock = threading.Lock()  # repro: noqa[RA202] created pre-fork, never held across spawn_worker(); children run worker_main from scratch
        self._req_ids = itertools.count(1)
        self.profile_hz = profile_hz
        # The front-end profiler is created in start() *after* the workers
        # fork: it owns a lock and a sampler thread, neither of which may
        # be reachable at fork time (RA202), and children build their own.
        self._profiler: Optional[SamplingProfiler] = None
        self._profile_pending: Dict[int, _ProfilePending] = {}
        self._ready = threading.Event()
        self._ready_count = 0
        self._closing = threading.Event()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PredictionService":
        """Spawn the pool, wait for warm replicas, open the HTTP endpoint."""
        if self._started:
            raise RuntimeError("PredictionService already started")
        import multiprocessing

        ctx = self._mp_context or multiprocessing.get_context()
        self._responses = ctx.Queue()
        plan_payload = self.plan.to_dict() if self.num_shards > 1 else None
        for worker_id in range(self.num_workers):
            shard = worker_id % self.num_shards
            handle = spawn_worker(
                self.checkpoint,
                worker_id,
                shard,
                plan_payload,
                self._responses,
                max_batch_size=self.max_batch_size,
                max_wait=self.max_wait,
                feature_cache_size=self.feature_cache_size,
                drift_baseline=self.drift_baseline,
                drift_threshold=self.drift_threshold,
                drift_window=self.drift_window,
                drift_min_samples=self.drift_min_samples,
                profile_hz=self.profile_hz,
                mp_context=ctx,
            )
            self._workers.append(handle)
            self._shard_workers.setdefault(shard, []).append(handle)
        self._collector = threading.Thread(
            target=self._collect, daemon=True, name="repro-serve-collector"
        )
        self._collector.start()
        if not self._ready.wait(self.warmup_timeout):
            self.close()
            raise RuntimeError(
                f"worker pool not ready within {self.warmup_timeout}s "
                f"({self._ready_count}/{self.num_workers} warm)"
            )
        if self.profile_hz:
            self._profiler = SamplingProfiler(
                interval=1.0 / self.profile_hz
            ).start()

        self._httpd = ThreadingHTTPServer(
            (self._host_arg, self._port_arg), _make_handler(self)
        )
        self.host, self.port = self._httpd.server_address[:2]
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True, name="repro-serve-http"
        )
        self._http_thread.start()
        self._started = True
        self._log.info(
            "listening",
            url=self.url,
            workers=self.num_workers,
            shards=self.num_shards,
            digest=self.model_digest,
        )
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop HTTP, workers and the collector; reject anything pending."""
        self._closing.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            if self._http_thread is not None:
                self._http_thread.join(5.0)
            self._httpd = None
            self._http_thread = None
        for handle in self._workers:
            handle.stop()
        if self._responses is not None:
            self._responses.put(("close",))
        if self._collector is not None:
            self._collector.join(5.0)
            self._collector = None
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for call in pending:
            call.error = "service shut down"
            call.event.set()
        with self._lock:
            profile_pending = list(self._profile_pending.values())
            self._profile_pending.clear()
        for entry in profile_pending:
            entry.event.set()
        if self._profiler is not None:
            self._profiler.stop()
            self._profiler = None
        if self._tracer is not None:
            self._tracer.close()
        if self.trace_store is not None:
            self.trace_store.close()
        self._started = False

    def __enter__(self) -> "PredictionService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Collector
    # ------------------------------------------------------------------
    def _collect(self) -> None:
        by_id = {handle.worker_id: handle for handle in self._workers}
        while True:
            try:
                message = self._responses.get(timeout=1.0)
            except queue.Empty:
                # The "close" sentinel is the normal exit; the timeout is
                # the fallback for a sentinel lost to a dead worker pipe.
                if self._closing.is_set():
                    return
                continue
            kind = message[0]
            if kind == "close":
                return
            if kind == "ready":
                _, worker_id, digest = message
                by_id[worker_id].model_digest = digest
                with self._lock:
                    self._ready_count += 1
                    if self._ready_count >= self.num_workers:
                        self._ready.set()
                continue
            if kind == "profile_result":
                # Control-plane reply: resolves a _ProfilePending future,
                # never touches the in-flight budget.
                _, worker_id, req_id, payload = message
                with self._lock:
                    entry = self._profile_pending.pop(req_id, None)
                if entry is not None:
                    entry.payload = payload
                    entry.event.set()
                continue
            if kind == "result":
                worker_id, req_id, predictions, stats = message[1:5]
                error = None
                worker_spans = message[5] if len(message) > 5 else []
                if worker_spans and self.trace_store is not None:
                    trace_id = worker_spans[0].get("trace_id")
                    if trace_id:
                        self.trace_store.add_spans(str(trace_id), worker_spans)
                drift = stats.get("drift")
                if drift is not None:
                    self._note_drift(int(stats.get("shard", 0)), drift)
            else:  # "error"
                _, worker_id, req_id, error = message
                predictions, stats = None, {}
            with self._lock:
                call = self._pending.pop(req_id, None)
                handle = by_id.get(worker_id)
                # Abandoned calls (timeout) already returned their budget in
                # the dispatcher's finally block — don't decrement twice.
                if call is not None and handle is not None and handle.inflight > 0:
                    handle.inflight -= 1
            if call is not None:
                call.predictions = predictions
                call.stats = stats
                call.error = error
                call.event.set()

    # ------------------------------------------------------------------
    # Drift aggregation (collector thread)
    # ------------------------------------------------------------------
    def _note_drift(self, shard: int, summary: Dict) -> None:
        """Fold one worker's drift window summary into parent-side state.

        Exports per-shard ``drift_*`` gauges, feeds the SLO monitor's
        ``drift_class_psi`` signal, and emits edge-triggered
        ``obs.drift.breach`` / ``obs.drift.recover`` events per shard.
        """
        with self._lock:
            self._drift_status[shard] = dict(summary)
        registry = self.metrics.registry
        for key in ("class_psi", "confidence_psi", "feature_psi"):
            value = summary.get(key)
            if value is not None:
                registry.gauge(f"drift.{key}.shard{shard}").set(float(value))
        registry.gauge(f"drift.samples.shard{shard}").set(
            float(summary.get("samples", 0))
        )
        if self.slo is not None and summary.get("class_psi") is not None:
            self.slo.observe("drift_class_psi", float(summary["class_psi"]))
            self.slo.evaluate()
        breached = bool(summary.get("breached"))
        was = self._drift_breached.get(shard, False)
        if breached != was:
            self._drift_breached[shard] = breached
            detail = {
                "shard": shard,
                "class_psi": summary.get("class_psi"),
                "confidence_psi": summary.get("confidence_psi"),
                "samples": summary.get("samples"),
                "threshold": summary.get("threshold"),
            }
            if breached:
                self._drift_log.warning("breach", **detail)
            else:
                self._drift_log.info("recover", **detail)

    def drift_status(self) -> Dict[int, Dict]:
        """Latest per-shard drift window summaries (empty when unarmed)."""
        with self._lock:
            return {shard: dict(s) for shard, s in self._drift_status.items()}

    # ------------------------------------------------------------------
    # Profiling (control plane)
    # ------------------------------------------------------------------
    def _worker_profiles(self, timeout: float = 10.0) -> Dict[int, Optional[Dict]]:
        """One profile snapshot per worker, gathered over the queues.

        Snapshot requests ride the normal request queues (so they serialize
        behind in-flight batches) and come back through the collector as
        ``profile_result`` messages; a worker that does not answer within
        ``timeout`` (dead, or grinding through a huge batch) contributes
        ``None`` rather than stalling the capture forever.
        """
        pending: Dict[int, tuple] = {}
        with self._lock:
            for handle in self._workers:
                req_id = next(self._req_ids)
                entry = _ProfilePending()
                self._profile_pending[req_id] = entry
                pending[handle.worker_id] = (req_id, entry, handle)
        for req_id, entry, handle in pending.values():
            if handle.alive():
                handle.requests.put(("profile_snapshot", req_id))
        results: Dict[int, Optional[Dict]] = {}
        deadline = time.perf_counter() + timeout
        for worker_id, (req_id, entry, handle) in pending.items():
            remaining = max(0.0, deadline - time.perf_counter())
            results[worker_id] = (
                entry.payload if entry.event.wait(remaining) else None
            )
            with self._lock:
                self._profile_pending.pop(req_id, None)
        return results

    def capture_profile(
        self, seconds: float = 1.0, *, hz: Optional[float] = None
    ) -> Profile:
        """A service-wide profile over a ``seconds`` window, merged by shard.

        With continuous profiling armed (``profile_hz``) the window is the
        difference of two cumulative snapshots — zero extra sampling cost.
        Unarmed, temporary samplers run in every process for just the
        window. Worker stacks root under ``shard<k>;worker<i>`` and the
        parent's under ``frontend``, so the flamegraph splits by shard at
        the first level.
        """
        if not self._started:
            raise ServiceUnavailable("service is not running")
        seconds = min(max(float(seconds), 0.05), 60.0)
        armed = self._profiler is not None
        temp: Optional[SamplingProfiler] = None
        rate = hz or self.profile_hz or DEFAULT_HZ
        if armed:
            front_before = self._profiler.snapshot()
            before = self._worker_profiles()
        else:
            temp = SamplingProfiler(interval=1.0 / rate).start()
            for handle in self._workers:
                if handle.alive():
                    handle.requests.put(("profile_start", rate))
            before = {}
        # closing.wait instead of sleep: shutdown aborts the window early
        # instead of holding close() hostage for the full capture.
        self._closing.wait(seconds)
        after = self._worker_profiles()
        if armed:
            frontend = self._profiler.snapshot().subtract(front_before)
        else:
            frontend = temp.snapshot()
            temp.stop()
            for handle in self._workers:
                if handle.alive():
                    handle.requests.put(("profile_stop",))
        parts: Dict[str, Optional[Profile]] = {"frontend": frontend}
        by_id = {handle.worker_id: handle for handle in self._workers}
        for worker_id, payload in after.items():
            if payload is None:
                continue
            profile = Profile.from_dict(payload)
            earlier = before.get(worker_id)
            if earlier is not None:
                profile = profile.subtract(Profile.from_dict(earlier))
            handle = by_id[worker_id]
            # A ";" in the root label yields two prefix frames, so the
            # merged stacks read shard<k> → worker<i> → python frames.
            parts[f"shard{handle.shard};worker{worker_id}"] = profile
        return merge_profiles(
            parts,
            meta={
                "kind": "serve",
                "window_s": seconds,
                "hz": rate,
                "workers": self.num_workers,
                "shards": self.num_shards,
                "model_digest": self.model_digest,
                "continuous": armed,
            },
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _span(self, name: str, **attrs):
        """A front-end span when tracing is on, the shared no-op when off."""
        if self._tracer is None:
            return NULL_SPAN
        return self._tracer.span(name, **attrs)
    def _admit(self, needed: Dict[int, int]) -> Dict[int, WorkerHandle]:
        """Pick one replica per shard and charge the in-flight budget.

        ``needed`` maps shard → request count (always 1 per shard-group
        here, but kept general). All-or-nothing under one lock: either
        every chosen worker has budget and all are charged, or nothing is
        and the caller gets the 429/503.
        """
        with self._lock:
            chosen: Dict[int, WorkerHandle] = {}
            for shard in needed:
                replicas = [
                    h for h in self._shard_workers.get(shard, ()) if h.alive()
                ]
                if not replicas:
                    raise ServiceUnavailable(f"no live worker for shard {shard}")
                handle = min(replicas, key=lambda h: (h.inflight, h.worker_id))
                if handle.inflight + needed[shard] > self.max_queue_depth:
                    raise ServiceOverloaded(
                        f"worker {handle.worker_id} at queue depth "
                        f"{handle.inflight}/{self.max_queue_depth}"
                    )
                chosen[shard] = handle
            for shard, handle in chosen.items():
                handle.inflight += needed[shard]
            self._inflight_gauge.set(sum(h.inflight for h in self._workers))
        return chosen

    def predict(
        self,
        request: PredictRequest,
        *,
        request_id: Optional[str] = None,
        parent_context: Optional[TraceContext] = None,
    ) -> PredictResponse:
        """Route one decoded request through the pool; merge shard results.

        With tracing enabled (``trace_dir``), the whole call runs under a
        ``serve.request`` root span: ``parent_context`` (a client's
        ``traceparent``, when supplied) names the trace and remote parent,
        otherwise a fresh trace id is minted. The root's context is
        rebound via :mod:`contextvars` so dispatch stamps every worker
        queue entry, and the merged trace lands in :attr:`trace_store`.
        """
        if not self._started:
            raise ServiceUnavailable("service is not running")
        if self._tracer is None:
            return self._predict(request, request_id=request_id, trace_ctx=None)
        context = (
            parent_context if parent_context is not None else TraceContext.new()
        )
        token = set_context(context)
        try:
            attrs = {"articles": len(request.articles)}
            if request_id is not None:
                attrs["request_id"] = request_id
            with self._tracer.span("serve.request", **attrs) as root:
                inner = context.child(root.span_id)
                inner_token = set_context(inner)
                try:
                    response = self._predict(
                        request, request_id=request_id, trace_ctx=inner
                    )
                finally:
                    reset_context(inner_token)
            response.meta["trace_id"] = context.trace_id
            return response
        finally:
            reset_context(token)

    def _predict(
        self,
        request: PredictRequest,
        *,
        request_id: Optional[str],
        trace_ctx: Optional[TraceContext],
    ) -> PredictResponse:
        start = time.perf_counter()
        articles = request.articles
        with self._span("serve.route"):
            groups: Dict[int, List[int]] = {}
            for i, article in enumerate(articles):
                groups.setdefault(self.plan.route(article), []).append(i)

        with self._span("serve.admit"):
            chosen = self._admit({shard: 1 for shard in groups})
        calls: List[tuple] = []
        with self._span("serve.dispatch", shards=len(groups)):
            with self._lock:
                for shard, indexes in groups.items():
                    req_id = next(self._req_ids)
                    call = _PendingCall()
                    self._pending[req_id] = call
                    calls.append((shard, indexes, req_id, call))
            for shard, indexes, req_id, call in calls:
                trace_payload = None
                if trace_ctx is not None:
                    trace_payload = {
                        "trace_id": trace_ctx.trace_id,
                        "parent_id": trace_ctx.span_id,
                        "enqueued": time.time(),
                    }
                chosen[shard].requests.put((
                    "predict",
                    req_id,
                    [_article_payload(articles[i]) for i in indexes],
                    request.return_proba,
                    trace_payload,
                ))

        deadline = start + self.request_timeout
        merged: List[Optional[Dict]] = [None] * len(articles)
        compute_ms = 0.0
        try:
            with self._span("serve.collect", shards=len(calls)):
                for shard, indexes, req_id, call in calls:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0 or not call.event.wait(remaining):
                        raise ServiceTimeout(
                            f"shard {shard} did not answer within "
                            f"{self.request_timeout}s"
                        )
                    if call.error is not None:
                        if not chosen[shard].alive():
                            raise ServiceUnavailable(
                                f"worker {chosen[shard].worker_id} died"
                            )
                        raise ServiceUnavailable(call.error)
                    for local, index in enumerate(indexes):
                        merged[index] = call.predictions[local]
                    compute_ms = max(
                        compute_ms, float(call.stats.get("compute_ms", 0.0))
                    )
        finally:
            with self._lock:
                for shard, _, req_id, _ in calls:
                    if self._pending.pop(req_id, None) is not None:
                        # Never answered (timeout/shutdown): the collector
                        # will not decrement for us — return the budget.
                        handle = chosen[shard]
                        if handle.inflight > 0:
                            handle.inflight -= 1
                self._inflight_gauge.set(
                    sum(h.inflight for h in self._workers)
                )

        total_seconds = time.perf_counter() - start
        self.metrics.record_batch(len(articles), total_seconds)
        if self.slo is not None:
            self.slo.observe_latency(total_seconds)
            self.slo.record_success()
            self.slo.observe_queue_depth(
                sum(h.inflight for h in self._workers)
            )
            self.slo.evaluate()
        return PredictResponse(
            predictions=[p for p in merged if p is not None],
            model_digest=self.model_digest,
            timing={
                "total_ms": 1e3 * total_seconds,
                "compute_ms": compute_ms,
                "shards": float(len(groups)),
            },
            meta={"request_id": request_id},
        )

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def health(self) -> Dict:
        """``/v1/healthz`` payload; non-``ok`` status renders as HTTP 503."""
        workers = [
            {
                "worker_id": h.worker_id,
                "shard": h.shard,
                "alive": h.alive(),
                "inflight": h.inflight,
            }
            for h in self._workers
        ]
        dead = [w["worker_id"] for w in workers if not w["alive"]]
        payload: Dict = {
            "status": "ok",
            "model_digest": self.model_digest,
            "shards": self.num_shards,
            "workers": workers,
        }
        if self.slo is not None:
            slo_health = self.slo.health()
            payload["slo"] = slo_health
            if slo_health["status"] != "ok":
                payload["status"] = "degraded"
        drift = self.drift_status()
        if drift:
            breached_shards = sorted(
                shard for shard, s in drift.items() if s.get("breached")
            )
            payload["drift"] = {
                "shards": {str(shard): s for shard, s in drift.items()},
                "breached_shards": breached_shards,
            }
            if breached_shards:
                payload["status"] = "degraded"
        if dead or not self._started:
            payload["status"] = "degraded"
            payload["dead_workers"] = dead
        return payload


def _make_handler(service: PredictionService):
    """The stdlib request handler bound to one service instance."""

    class _Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve/1"
        protocol_version = "HTTP/1.1"
        # keep-alive without Nagle: a buffered small reply would otherwise
        # stall ~40ms against the client's delayed ACK
        disable_nagle_algorithm = True

        def do_GET(self) -> None:  # stdlib handler naming contract
            route = self.path.split("?", 1)[0]
            if route == "/v1/healthz":
                payload = service.health()
                status = 200 if payload["status"] == "ok" else 503
                self._reply_json(status, payload)
            elif route == "/metrics":
                body = render_prometheus(service.metrics.registry).encode("utf-8")
                self._reply(200, "text/plain; version=0.0.4; charset=utf-8", body)
            elif route == "/debug/profile":
                self._debug_profile()
            else:
                self._reply_json(404, error_body("not_found", f"no route {route}"))

        def do_POST(self) -> None:  # stdlib handler naming contract
            route = self.path.split("?", 1)[0]
            if route != "/v1/predict":
                self._reply_json(404, error_body("not_found", f"no route {route}"))
                return
            service._http_requests.inc(1)
            # Correlation ids: echo the client's X-Request-Id (or mint one)
            # on every predict reply, success or failure, and adopt the
            # client's traceparent as the distributed trace parent.
            request_id = self.headers.get(REQUEST_ID_HEADER) or new_request_id()
            echo = {REQUEST_ID_HEADER: request_id}
            parent_context = extract_context(self.headers)
            try:
                length = int(self.headers.get("Content-Length", "0"))
                raw = self.rfile.read(length) if length else b""
                document = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self._reply_json(
                    400,
                    error_body("bad_request", "body is not valid JSON"),
                    headers=echo,
                )
                return
            try:
                request = PredictRequest.from_dict(document)
            except ProtocolError as exc:
                self._reply_json(400, error_body(exc.code, exc.message), headers=echo)
                return
            try:
                response = service.predict(
                    request,
                    request_id=request_id,
                    parent_context=parent_context,
                )
            except ServiceOverloaded as exc:
                service._http_rejected.inc(1)
                self._reply_json(
                    429,
                    error_body("overloaded", str(exc)),
                    headers={"Retry-After": "1", **echo},
                )
                return
            except ServiceTimeout as exc:
                self._record_error()
                self._reply_json(504, error_body("timeout", str(exc)), headers=echo)
                return
            except ServiceUnavailable as exc:
                self._record_error()
                self._reply_json(503, error_body("unavailable", str(exc)), headers=echo)
                return
            self._reply_json(200, response.to_dict(), headers=echo)

        def _debug_profile(self) -> None:
            """``GET /debug/profile?seconds=N[&format=json|folded|svg]``.

            An on-demand service-wide capture: blocks this handler thread
            for the window (ThreadingHTTPServer keeps serving traffic),
            then returns the merged per-shard profile.
            """
            params = parse_qs(self.path.partition("?")[2])
            try:
                seconds = float(params.get("seconds", ["1.0"])[0])
            except ValueError:
                self._reply_json(
                    400, error_body("bad_request", "seconds must be a number")
                )
                return
            fmt = params.get("format", ["json"])[0]
            if fmt not in ("json", "folded", "svg"):
                self._reply_json(
                    400,
                    error_body("bad_request", f"unknown profile format {fmt!r}"),
                )
                return
            try:
                profile = service.capture_profile(seconds)
            except ServiceUnavailable as exc:
                self._reply_json(503, error_body("unavailable", str(exc)))
                return
            if fmt == "svg":
                self._reply(
                    200,
                    "image/svg+xml",
                    render_flamegraph_svg(profile).encode("utf-8"),
                )
            elif fmt == "folded":
                self._reply(
                    200,
                    "text/plain; charset=utf-8",
                    profile.folded().encode("utf-8"),
                )
            else:
                self._reply_json(200, profile.to_dict())

        def _record_error(self) -> None:
            service._http_errors.inc(1)
            if service.slo is not None:
                service.slo.record_error()
                service.slo.evaluate()

        def _reply_json(
            self, status: int, payload: Dict, headers: Optional[Dict] = None
        ) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self._reply(status, "application/json", body, headers)

        def _reply(
            self,
            status: int,
            content_type: str,
            body: bytes,
            headers: Optional[Dict] = None,
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, fmt: str, *args) -> None:
            get_logger("serve.http").debug("request", detail=fmt % args)

    return _Handler
