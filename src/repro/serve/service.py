"""The multi-process sharded prediction service behind ``repro serve http``.

Topology::

                      POST /v1/predict (repro.serve.request/1)
                                  |
    client ── HTTP ──► PredictionService (stdlib ThreadingHTTPServer)
                                  |  ShardPlan.route() per article
                    ┌─────────────┼─────────────┐
                 shard 0       shard 1       shard k        (request queues)
                 worker(s)     worker(s)     worker(s)      (OS processes)
                    └─────────────┼─────────────┘
                         shared response queue
                                  |
                        collector thread → pending futures
                                  |
                      repro.serve.response/1 to the client

Every worker holds a model replica loaded from the same directory
checkpoint, with its GDU diffusion context restricted to its shard's
creator/subject communities (:class:`repro.serve.ShardPlan`). The parent
routes each article of a request to its shard, fans the request out to the
least-loaded replica per shard, and reassembles predictions in input order.

Admission control is a bounded per-worker in-flight budget
(``max_queue_depth``): when the budget of any needed worker is exhausted
the request is rejected *before* anything is enqueued, surfacing as HTTP
429 with a ``Retry-After`` header — queues cannot grow without bound.

Observability is the PR 4 stack wired in directly: the service registry
feeds ``GET /metrics`` (Prometheus text format) and an optional
:class:`repro.obs.PeriodicExporter`; an optional
:class:`repro.obs.SloMonitor` sees every request's latency, success/error
flag and the global in-flight depth, and its breaches flip
``GET /v1/healthz`` to 503 — the load-balancer eject signal.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence

from ..obs import get_logger, render_prometheus
from .checkpoint import checkpoint_digest
from .metrics import ServingMetrics
from .protocol import (
    PredictRequest,
    PredictResponse,
    ProtocolError,
    error_body,
)
from .shard import ShardPlan
from .worker import WorkerHandle, spawn_worker


class ServiceOverloaded(RuntimeError):
    """Admission control rejected the request (HTTP 429)."""


class ServiceUnavailable(RuntimeError):
    """A needed worker is dead or the pool is not ready (HTTP 503)."""


class ServiceTimeout(RuntimeError):
    """A dispatched request missed the deadline (HTTP 504)."""


class _PendingCall:
    """Future for one shard-group dispatch."""

    __slots__ = ("event", "predictions", "stats", "error")

    def __init__(self):
        self.event = threading.Event()
        self.predictions: Optional[List[Dict]] = None
        self.stats: Dict = {}
        self.error: Optional[str] = None


def _article_payload(article) -> Dict:
    return {
        "article_id": article.article_id,
        "text": article.text,
        "creator_id": article.creator_id,
        "subject_ids": list(article.subject_ids),
    }


class PredictionService:
    """Worker-pool prediction service with a versioned HTTP API.

    Parameters
    ----------
    checkpoint:
        Detector checkpoint directory; every worker loads its own replica.
    workers:
        Pool size (>= ``shards``); workers are dealt round-robin over
        shards so every shard has at least one replica.
    shards:
        News-HSN partitions (1 = no partitioning, full context per worker).
    host / port:
        HTTP bind address; ``port=0`` picks an ephemeral port.
    max_batch_size / max_wait:
        Per-worker dynamic batching knobs (see :mod:`repro.serve.worker`).
    max_queue_depth:
        Admission control: in-flight request budget per worker; beyond it
        requests get 429 + ``Retry-After``.
    request_timeout:
        Seconds a dispatched request may wait before 504.
    feature_cache_size:
        Per-worker LRU text-feature cache entries.
    slo:
        Optional :class:`repro.obs.SloMonitor`; fed latency/error/depth
        signals, drives ``/v1/healthz``.
    """

    def __init__(
        self,
        checkpoint,
        *,
        workers: int = 2,
        shards: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch_size: int = 32,
        max_wait: float = 0.002,
        max_queue_depth: int = 32,
        request_timeout: float = 30.0,
        feature_cache_size: int = 2048,
        warmup_timeout: float = 120.0,
        slo=None,
        mp_context=None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if workers < shards:
            raise ValueError(
                f"workers ({workers}) must be >= shards ({shards}) so every "
                "shard has a replica"
            )
        self.checkpoint = str(checkpoint)
        self.num_workers = workers
        self.num_shards = shards
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait
        self.max_queue_depth = max_queue_depth
        self.request_timeout = request_timeout
        self.feature_cache_size = feature_cache_size
        self.warmup_timeout = warmup_timeout
        self.slo = slo
        self._mp_context = mp_context
        self._host_arg, self._port_arg = host, port
        self._log = get_logger("serve.service")

        self.metrics = ServingMetrics()
        registry = self.metrics.registry
        self._http_requests = registry.counter("serve.http_requests")
        self._http_rejected = registry.counter("serve.http_rejected")
        self._http_errors = registry.counter("serve.http_errors")
        self._inflight_gauge = registry.gauge("serve.inflight")

        self.plan = (
            ShardPlan.single()
            if shards == 1
            else ShardPlan.from_checkpoint(self.checkpoint, shards)
        )
        self.model_digest = checkpoint_digest(self.checkpoint)

        self._workers: List[WorkerHandle] = []
        self._shard_workers: Dict[int, List[WorkerHandle]] = {}
        self._responses = None
        self._collector: Optional[threading.Thread] = None
        self._pending: Dict[int, _PendingCall] = {}
        self._lock = threading.Lock()
        self._req_ids = itertools.count(1)
        self._ready = threading.Event()
        self._ready_count = 0
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PredictionService":
        """Spawn the pool, wait for warm replicas, open the HTTP endpoint."""
        if self._started:
            raise RuntimeError("PredictionService already started")
        import multiprocessing

        ctx = self._mp_context or multiprocessing.get_context()
        self._responses = ctx.Queue()
        plan_payload = self.plan.to_dict() if self.num_shards > 1 else None
        for worker_id in range(self.num_workers):
            shard = worker_id % self.num_shards
            handle = spawn_worker(
                self.checkpoint,
                worker_id,
                shard,
                plan_payload,
                self._responses,
                max_batch_size=self.max_batch_size,
                max_wait=self.max_wait,
                feature_cache_size=self.feature_cache_size,
                mp_context=ctx,
            )
            self._workers.append(handle)
            self._shard_workers.setdefault(shard, []).append(handle)
        self._collector = threading.Thread(
            target=self._collect, daemon=True, name="repro-serve-collector"
        )
        self._collector.start()
        if not self._ready.wait(self.warmup_timeout):
            self.close()
            raise RuntimeError(
                f"worker pool not ready within {self.warmup_timeout}s "
                f"({self._ready_count}/{self.num_workers} warm)"
            )

        self._httpd = ThreadingHTTPServer(
            (self._host_arg, self._port_arg), _make_handler(self)
        )
        self.host, self.port = self._httpd.server_address[:2]
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True, name="repro-serve-http"
        )
        self._http_thread.start()
        self._started = True
        self._log.info(
            "listening",
            url=self.url,
            workers=self.num_workers,
            shards=self.num_shards,
            digest=self.model_digest,
        )
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop HTTP, workers and the collector; reject anything pending."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            if self._http_thread is not None:
                self._http_thread.join(5.0)
            self._httpd = None
            self._http_thread = None
        for handle in self._workers:
            handle.stop()
        if self._responses is not None:
            self._responses.put(("close",))
        if self._collector is not None:
            self._collector.join(5.0)
            self._collector = None
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for call in pending:
            call.error = "service shut down"
            call.event.set()
        self._started = False

    def __enter__(self) -> "PredictionService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Collector
    # ------------------------------------------------------------------
    def _collect(self) -> None:
        by_id = {handle.worker_id: handle for handle in self._workers}
        while True:
            message = self._responses.get()
            kind = message[0]
            if kind == "close":
                return
            if kind == "ready":
                _, worker_id, digest = message
                by_id[worker_id].model_digest = digest
                with self._lock:
                    self._ready_count += 1
                    if self._ready_count >= self.num_workers:
                        self._ready.set()
                continue
            if kind == "result":
                _, worker_id, req_id, predictions, stats = message
                error = None
            else:  # "error"
                _, worker_id, req_id, error = message
                predictions, stats = None, {}
            with self._lock:
                call = self._pending.pop(req_id, None)
                handle = by_id.get(worker_id)
                # Abandoned calls (timeout) already returned their budget in
                # the dispatcher's finally block — don't decrement twice.
                if call is not None and handle is not None and handle.inflight > 0:
                    handle.inflight -= 1
            if call is not None:
                call.predictions = predictions
                call.stats = stats
                call.error = error
                call.event.set()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _admit(self, needed: Dict[int, int]) -> Dict[int, WorkerHandle]:
        """Pick one replica per shard and charge the in-flight budget.

        ``needed`` maps shard → request count (always 1 per shard-group
        here, but kept general). All-or-nothing under one lock: either
        every chosen worker has budget and all are charged, or nothing is
        and the caller gets the 429/503.
        """
        with self._lock:
            chosen: Dict[int, WorkerHandle] = {}
            for shard in needed:
                replicas = [
                    h for h in self._shard_workers.get(shard, ()) if h.alive()
                ]
                if not replicas:
                    raise ServiceUnavailable(f"no live worker for shard {shard}")
                handle = min(replicas, key=lambda h: (h.inflight, h.worker_id))
                if handle.inflight + needed[shard] > self.max_queue_depth:
                    raise ServiceOverloaded(
                        f"worker {handle.worker_id} at queue depth "
                        f"{handle.inflight}/{self.max_queue_depth}"
                    )
                chosen[shard] = handle
            for shard, handle in chosen.items():
                handle.inflight += needed[shard]
            self._inflight_gauge.set(sum(h.inflight for h in self._workers))
        return chosen

    def predict(self, request: PredictRequest) -> PredictResponse:
        """Route one decoded request through the pool; merge shard results."""
        if not self._started:
            raise ServiceUnavailable("service is not running")
        start = time.perf_counter()
        articles = request.articles
        groups: Dict[int, List[int]] = {}
        for i, article in enumerate(articles):
            groups.setdefault(self.plan.route(article), []).append(i)

        chosen = self._admit({shard: 1 for shard in groups})
        calls: List[tuple] = []
        with self._lock:
            for shard, indexes in groups.items():
                req_id = next(self._req_ids)
                call = _PendingCall()
                self._pending[req_id] = call
                calls.append((shard, indexes, req_id, call))
        for shard, indexes, req_id, call in calls:
            chosen[shard].requests.put((
                "predict",
                req_id,
                [_article_payload(articles[i]) for i in indexes],
                request.return_proba,
            ))

        deadline = start + self.request_timeout
        merged: List[Optional[Dict]] = [None] * len(articles)
        compute_ms = 0.0
        try:
            for shard, indexes, req_id, call in calls:
                remaining = deadline - time.perf_counter()
                if remaining <= 0 or not call.event.wait(remaining):
                    raise ServiceTimeout(
                        f"shard {shard} did not answer within "
                        f"{self.request_timeout}s"
                    )
                if call.error is not None:
                    if not chosen[shard].alive():
                        raise ServiceUnavailable(
                            f"worker {chosen[shard].worker_id} died"
                        )
                    raise ServiceUnavailable(call.error)
                for local, index in enumerate(indexes):
                    merged[index] = call.predictions[local]
                compute_ms = max(compute_ms, float(call.stats.get("compute_ms", 0.0)))
        finally:
            with self._lock:
                for shard, _, req_id, _ in calls:
                    if self._pending.pop(req_id, None) is not None:
                        # Never answered (timeout/shutdown): the collector
                        # will not decrement for us — return the budget.
                        handle = chosen[shard]
                        if handle.inflight > 0:
                            handle.inflight -= 1
                self._inflight_gauge.set(
                    sum(h.inflight for h in self._workers)
                )

        total_seconds = time.perf_counter() - start
        self.metrics.record_batch(len(articles), total_seconds)
        if self.slo is not None:
            self.slo.observe_latency(total_seconds)
            self.slo.record_success()
            self.slo.observe_queue_depth(
                sum(h.inflight for h in self._workers)
            )
            self.slo.evaluate()
        return PredictResponse(
            predictions=[p for p in merged if p is not None],
            model_digest=self.model_digest,
            timing={
                "total_ms": 1e3 * total_seconds,
                "compute_ms": compute_ms,
                "shards": float(len(groups)),
            },
        )

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def health(self) -> Dict:
        """``/v1/healthz`` payload; non-``ok`` status renders as HTTP 503."""
        workers = [
            {
                "worker_id": h.worker_id,
                "shard": h.shard,
                "alive": h.alive(),
                "inflight": h.inflight,
            }
            for h in self._workers
        ]
        dead = [w["worker_id"] for w in workers if not w["alive"]]
        payload: Dict = {
            "status": "ok",
            "model_digest": self.model_digest,
            "shards": self.num_shards,
            "workers": workers,
        }
        if self.slo is not None:
            slo_health = self.slo.health()
            payload["slo"] = slo_health
            if slo_health["status"] != "ok":
                payload["status"] = "degraded"
        if dead or not self._started:
            payload["status"] = "degraded"
            payload["dead_workers"] = dead
        return payload


def _make_handler(service: PredictionService):
    """The stdlib request handler bound to one service instance."""

    class _Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve/1"
        protocol_version = "HTTP/1.1"
        # keep-alive without Nagle: a buffered small reply would otherwise
        # stall ~40ms against the client's delayed ACK
        disable_nagle_algorithm = True

        def do_GET(self) -> None:  # stdlib handler naming contract
            route = self.path.split("?", 1)[0]
            if route == "/v1/healthz":
                payload = service.health()
                status = 200 if payload["status"] == "ok" else 503
                self._reply_json(status, payload)
            elif route == "/metrics":
                body = render_prometheus(service.metrics.registry).encode("utf-8")
                self._reply(200, "text/plain; version=0.0.4; charset=utf-8", body)
            else:
                self._reply_json(404, error_body("not_found", f"no route {route}"))

        def do_POST(self) -> None:  # stdlib handler naming contract
            route = self.path.split("?", 1)[0]
            if route != "/v1/predict":
                self._reply_json(404, error_body("not_found", f"no route {route}"))
                return
            service._http_requests.inc(1)
            try:
                length = int(self.headers.get("Content-Length", "0"))
                raw = self.rfile.read(length) if length else b""
                document = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self._reply_json(
                    400, error_body("bad_request", "body is not valid JSON")
                )
                return
            try:
                request = PredictRequest.from_dict(document)
            except ProtocolError as exc:
                self._reply_json(400, error_body(exc.code, exc.message))
                return
            try:
                response = service.predict(request)
            except ServiceOverloaded as exc:
                service._http_rejected.inc(1)
                self._reply_json(
                    429,
                    error_body("overloaded", str(exc)),
                    headers={"Retry-After": "1"},
                )
                return
            except ServiceTimeout as exc:
                self._record_error()
                self._reply_json(504, error_body("timeout", str(exc)))
                return
            except ServiceUnavailable as exc:
                self._record_error()
                self._reply_json(503, error_body("unavailable", str(exc)))
                return
            self._reply_json(200, response.to_dict())

        def _record_error(self) -> None:
            service._http_errors.inc(1)
            if service.slo is not None:
                service.slo.record_error()
                service.slo.evaluate()

        def _reply_json(
            self, status: int, payload: Dict, headers: Optional[Dict] = None
        ) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self._reply(status, "application/json", body, headers)

        def _reply(
            self,
            status: int,
            content_type: str,
            body: bytes,
            headers: Optional[Dict] = None,
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, fmt: str, *args) -> None:
            get_logger("serve.http").debug("request", detail=fmt % args)

    return _Handler
