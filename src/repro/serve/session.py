"""Cached-state inference sessions: O(batch) scoring against a fitted graph.

``FakeDetector.predict_new_articles`` historically re-ran the full-graph
``forward_with_states`` on *every* call, so per-request latency scaled with
the whole News-HSN. Following the amortization argument of "Fake News Quick
Detection on Dynamic Heterogeneous Information Networks" (arXiv 2205.07039),
an :class:`InferenceSession` runs that expensive pass exactly once at
construction, caches the creator/subject GDU hidden states and row indices,
and then answers article queries with a forward over the batch alone:
HFLU(text) → article GDU against cached neighbor states → softmax head.
Unknown creators/subjects fall back to the zero state — FAKEDETECTOR §4.2's
unused-port convention.
"""

from __future__ import annotations

import dataclasses
import hashlib
from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from ..autograd import Tensor, no_tape
from ..core.predictions import Prediction, predictions_from_logits
from ..obs import trace
from ..text.sequences import encode_batch
from ..text.tokenizer import tokenize
from .cache import LRUCache
from .metrics import ServingMetrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.trainer import FakeDetector
    from ..obs.slo import SloMonitor


@dataclasses.dataclass
class ArticleRequest:
    """A serve-time scoring request: the duck-typed subset of ``Article``.

    Incoming statements have no ground-truth label, so the server accepts
    this lightweight record (or any object with the same attributes,
    including :class:`repro.data.Article`).
    """

    article_id: str
    text: str
    creator_id: str = ""
    subject_ids: List[str] = dataclasses.field(default_factory=list)

    @classmethod
    def from_dict(cls, payload: Dict) -> "ArticleRequest":
        return cls(
            article_id=str(payload["article_id"]),
            text=str(payload.get("text", "")),
            creator_id=str(payload.get("creator_id", "") or ""),
            subject_ids=[str(s) for s in payload.get("subject_ids", [])],
        )


def _text_key(text: str) -> str:
    return hashlib.sha1(text.encode("utf-8")).hexdigest()


class InferenceSession:
    """Persistent serving wrapper around a fitted :class:`FakeDetector`.

    Parameters
    ----------
    detector:
        A fitted detector (freshly trained or :meth:`FakeDetector.load`-ed).
    feature_cache_size:
        LRU capacity for per-text feature vectors (0 disables the cache).
    metrics:
        Optional shared :class:`ServingMetrics`; a fresh one by default.
    slo:
        Optional :class:`repro.obs.SloMonitor`. When set, every prediction
        batch feeds the monitor's rolling latency window and triggers an
        evaluation, so SLO breach events fire from inside the serving path
        (a :class:`repro.serve.BatchQueue` sharing the same monitor adds
        queue wait/depth and error-rate signals).
    context_ids:
        Optional ``{"creator": ids, "subject": ids}`` restriction of the
        cached diffusion context — the shard-local mode used by
        :mod:`repro.serve.worker`. Creators/subjects outside the sets take
        the zero-state fallback exactly like ids absent from the graph;
        with ``None`` (the default) the full graph context is cached.
    drift:
        Optional :class:`repro.obs.DriftMonitor`. When set, every article
        batch's explicit features and logits feed the monitor's rolling
        window, so PSI/KL drift is measured exactly where the prediction
        happens.

    The constructor performs the single full-graph forward pass; afterwards
    :meth:`predict` never touches the graph again.
    """

    def __init__(
        self,
        detector: "FakeDetector",
        *,
        feature_cache_size: int = 2048,
        metrics: Optional[ServingMetrics] = None,
        slo: Optional["SloMonitor"] = None,
        context_ids: Optional[Dict[str, set]] = None,
        drift=None,
    ):
        if detector.model is None or detector.features is None:
            raise RuntimeError("InferenceSession requires a fitted detector")
        self.detector = detector
        self.config = detector.config
        self.metrics = metrics or ServingMetrics()
        self.slo = slo
        self.drift = drift
        self._feature_cache = LRUCache(feature_cache_size)

        model = detector.model
        model.eval()
        # The one-and-only full-graph pass: cache every node type's final
        # GDU state plus the row indices needed to look neighbors up.
        with trace(
            "serve.session_init", articles=detector.features.articles.num
        ):
            # Inference-only pass: no_tape skips all autograd bookkeeping.
            with no_tape():
                logits, states = model.forward_with_states(
                    detector.features, detector.graph
                )
        self._graph_logits = {kind: t.data.copy() for kind, t in logits.items()}
        self._h_creator = states["creator"].data.copy()
        self._h_subject = states["subject"].data.copy()
        self._creator_rows = dict(detector.features.creators.index)
        self._subject_rows = dict(detector.features.subjects.index)
        if context_ids is not None:
            keep_creators = set(context_ids.get("creator", ()))
            keep_subjects = set(context_ids.get("subject", ()))
            self._creator_rows = {
                cid: row for cid, row in self._creator_rows.items()
                if cid in keep_creators
            }
            self._subject_rows = {
                sid: row for sid, row in self._subject_rows.items()
                if sid in keep_subjects
            }
        self._extractor = detector.features.extractors["article"]
        self._vocab = detector.features.vocab
        # id -> (kind, row) lookup for known-node predictions, resolved in
        # article → creator → subject order (entity namespaces are disjoint
        # in every loader; the order only matters for pathological corpora).
        self._known_nodes: Dict[str, tuple] = {}
        for kind in ("subject", "creator", "article"):
            for eid, row in detector.features.by_type(kind).index.items():
                self._known_nodes[eid] = (kind, row)

    # ------------------------------------------------------------------
    def _encode(self, text: str):
        """(explicit, sequence) features for one text, via the LRU cache."""
        explicit, sequences = self._encode_batch([text])
        return explicit[0], sequences[0]

    def _encode_batch(self, texts: Sequence[str]):
        """Batched ``(explicit (n, d), sequences (n, T))`` feature encode.

        Cache hits are served from the LRU; all misses in the batch are
        featurized together — the explicit vectors through the CSR sparse
        path (:meth:`repro.text.BagOfWordsExtractor.transform_csr`) instead
        of per-row dense building, the token ids in one ``encode_batch``.
        """
        encoded: List = [None] * len(texts)
        keys: List[str] = []
        miss_idx: List[int] = []
        miss_tokens: List = []
        for i, text in enumerate(texts):
            key = _text_key(text)
            keys.append(key)
            cached = self._feature_cache.get(key)
            if cached is not None:
                self.metrics.record_cache(hit=True)
                encoded[i] = cached
            else:
                self.metrics.record_cache(hit=False)
                miss_idx.append(i)
                miss_tokens.append(tokenize(text))
        if miss_idx:
            if len(miss_tokens) == 1:
                # Single-request misses skip CSR assembly: one dict-lookup
                # count pass produces bit-identical features (the row norm
                # sums the same non-zeros either way).
                explicit = self._extractor.transform_one(miss_tokens[0])[None]
            else:
                explicit = self._extractor.transform(miss_tokens)
            sequences = encode_batch(
                miss_tokens, self._vocab, self.config.max_seq_len
            )
            for j, i in enumerate(miss_idx):
                pair = (explicit[j], sequences[j])
                encoded[i] = pair
                self._feature_cache.put(keys[i], pair)
        return (
            np.stack([e for e, _ in encoded]),
            np.stack([s for _, s in encoded]),
        )

    def predict(
        self,
        articles: Sequence = (),
        *,
        return_proba: bool = False,
        known_ids: Optional[Sequence[str]] = None,
    ) -> List[Prediction]:
        """The one serving entry point: score new articles and/or known nodes.

        Parameters
        ----------
        articles:
            New (inductive) articles — anything with ``article_id``,
            ``text``, ``creator_id`` and ``subject_ids`` attributes
            (``Article`` or :class:`ArticleRequest`). Scored against the
            cached graph states with one batched forward.
        return_proba:
            Attach the 6-class softmax distribution to every prediction.
        known_ids:
            Entity ids already in the trained graph (any node type). Their
            predictions are served from the logits cached at construction —
            no forward pass. Unknown ids raise ``KeyError``.

        Returns one :class:`Prediction` per input — articles first, then
        known ids, each group in input order.
        """
        result = self._predict_articles(articles, return_proba=return_proba)
        if known_ids is not None:
            result.extend(self._predict_known_ids(known_ids, return_proba))
        return result

    def _predict_known_ids(
        self, known_ids: Sequence[str], return_proba: bool
    ) -> List[Prediction]:
        """Cached-logit lookups for nodes already in the trained graph."""
        out: List[Prediction] = []
        for eid in known_ids:
            try:
                kind, row = self._known_nodes[eid]
            except KeyError:
                raise KeyError(
                    f"{eid!r} is not a node of the trained graph "
                    "(new articles go in the 'articles' argument)"
                ) from None
            out.extend(
                predictions_from_logits(
                    [eid],
                    self._graph_logits[kind][row : row + 1],
                    return_proba=return_proba,
                )
            )
        return out

    def _predict_articles(
        self, articles: Sequence, *, return_proba: bool
    ) -> List[Prediction]:
        if not articles:
            return []
        with trace("serve.predict", batch=len(articles)) as span:
            start = perf_counter()
            # The model went into eval mode at construction; re-walking the
            # module tree per request costs more than the head matmul.
            model = self.detector.model

            with trace("serve.encode", batch=len(articles)):
                explicit, sequences = self._encode_batch(
                    [a.text for a in articles]
                )

            hidden = model.gdu_article.hidden_dim
            z = np.zeros((len(articles), hidden))
            t = np.zeros((len(articles), hidden))
            for i, article in enumerate(articles):
                known_subjects = [
                    self._subject_rows[s]
                    for s in article.subject_ids
                    if s in self._subject_rows
                ]
                if known_subjects:
                    z[i] = self._h_subject[known_subjects].mean(axis=0)
                creator_row = self._creator_rows.get(article.creator_id)
                if creator_row is not None:
                    t[i] = self._h_creator[creator_row]

            # Forward-only scoring: no_tape skips graph/grad bookkeeping.
            with no_tape():
                x = model.hflu_article(explicit, sequences)
                h = model.gdu_article(x, Tensor(z), Tensor(t))
                logits = model.head_article(h).data
            if self.drift is not None:
                self.drift.observe_batch(explicit, logits)
            ids = [a.article_id for a in articles]
            result = predictions_from_logits(ids, logits, return_proba=return_proba)
            seconds = perf_counter() - start
            self.metrics.record_batch(len(articles), seconds)
            if self.slo is not None:
                # One sample per request (the compute share), matching the
                # metrics accounting — a single fat batch must not count as
                # one observation against min_samples.
                for _ in range(len(articles)):
                    self.slo.observe_latency(seconds / len(articles))
                self.slo.evaluate()
            span.set(compute_seconds=seconds)
        return result

    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, float]:
        return self._feature_cache.stats()

    def snapshot(self) -> Dict[str, float]:
        """Serving report: metrics counters plus cache occupancy."""
        snap = self.metrics.snapshot()
        snap["feature_cache_size"] = float(len(self._feature_cache))
        return snap
