"""Shard planning and request routing for the multi-process service.

A :class:`ShardPlan` partitions the trained News-HSN's creators and
subjects into ``num_shards`` shards so each worker only holds the GDU
diffusion context its traffic needs:

- When the creator↔subject projection has at least ``num_shards``
  connected **communities** (see :mod:`repro.graph.partition`), whole
  communities are bin-packed onto shards by article weight. Communities
  are closed under training-graph edges, so a shard's context is exactly
  local and no state is replicated.
- Real fact-checking graphs are usually one giant component (a handful of
  subjects touch every creator). With fewer communities than shards the
  plan falls back to a **creator-level split**: creators are bin-packed by
  article count and each subject's hidden state is replicated onto every
  shard that has a creator linked to it. Context stays local for
  training-shaped traffic (an article's subjects always co-occur with its
  creator on that creator's shard) at the cost of duplicating the small
  subject state table.

Routing (:meth:`ShardPlan.shard_for`) is a pure function of the request:

1. known ``creator_id`` → that creator's shard;
2. else the lowest known ``subject_id`` (sorted, so the subject list's
   order cannot change the route) → that subject's home shard;
3. else (nothing known in the graph) a stable SHA-1 hash of
   ``article_id`` modulo ``num_shards``.

Rule 3 makes the plan usable for cold traffic too, and the whole function
is deterministic across processes and restarts — the property the service
relies on for cache locality and the tests pin down.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List, Sequence

import numpy as np

from ..graph.partition import (
    balanced_assignment,
    community_article_weights,
    community_labels,
)


def _stable_hash(value: str) -> int:
    return int.from_bytes(hashlib.sha1(value.encode("utf-8")).digest()[:8], "big")


@dataclasses.dataclass
class ShardPlan:
    """Deterministic creator/subject → shard assignment plus the router."""

    num_shards: int
    creator_shard: Dict[str, int]
    subject_shard: Dict[str, int]       # routing home (one shard per subject)
    #: shards holding each subject's hidden state (>= the home shard; more
    #: than one only in the creator-split fallback, where subjects whose
    #: articles span shards are replicated).
    subject_context: Dict[str, List[int]]
    shard_weights: List[float]          # articles per shard (balance report)

    # -- construction --------------------------------------------------
    @classmethod
    def single(cls) -> "ShardPlan":
        """The trivial 1-shard plan (everything routes to shard 0)."""
        return cls(1, {}, {}, {}, [0.0])

    @classmethod
    def from_detector(cls, detector, num_shards: int) -> "ShardPlan":
        """Partition a fitted/loaded detector's graph into ``num_shards``."""
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if detector.features is None or detector.graph is None:
            raise RuntimeError("ShardPlan requires a fitted detector")
        features, graph = detector.features, detector.graph
        creator_comm, subject_comm, n_comm = community_labels(
            features.creators.num,
            features.subjects.num,
            graph.article_creator,
            graph.article_subject_gather,
            graph.article_subject_segment,
        )
        if n_comm >= num_shards:
            creator_rows, subject_rows, subject_ctx_rows = _community_split(
                creator_comm, subject_comm, n_comm, graph.article_creator,
                num_shards,
            )
        else:
            creator_rows, subject_rows, subject_ctx_rows = _creator_split(
                features.creators.num, features.subjects.num,
                graph.article_creator, graph.article_subject_gather,
                graph.article_subject_segment, num_shards,
            )
        shard_weights = [0.0] * num_shards
        for creator_row in np.asarray(graph.article_creator, dtype=np.intp):
            shard_weights[creator_rows[creator_row]] += 1.0
        return cls(
            num_shards=num_shards,
            creator_shard={
                cid: int(creator_rows[row])
                for cid, row in features.creators.index.items()
            },
            subject_shard={
                sid: int(subject_rows[row])
                for sid, row in features.subjects.index.items()
            },
            subject_context={
                sid: subject_ctx_rows[row]
                for sid, row in features.subjects.index.items()
            },
            shard_weights=shard_weights,
        )

    @classmethod
    def from_checkpoint(cls, path, num_shards: int) -> "ShardPlan":
        """Build the plan straight from a checkpoint directory."""
        from .checkpoint import load_detector

        return cls.from_detector(load_detector(path), num_shards)

    # -- routing -------------------------------------------------------
    def shard_for(
        self, article_id: str, creator_id: str = "", subject_ids: Sequence[str] = ()
    ) -> int:
        """The shard that owns this article's diffusion context."""
        if self.num_shards == 1:
            return 0
        shard = self.creator_shard.get(creator_id)
        if shard is not None:
            return shard
        for subject_id in sorted(subject_ids):
            shard = self.subject_shard.get(subject_id)
            if shard is not None:
                return shard
        return _stable_hash(article_id) % self.num_shards

    def route(self, article) -> int:
        """:meth:`shard_for` over anything with the article attributes."""
        return self.shard_for(
            article.article_id, article.creator_id, article.subject_ids
        )

    def context_ids(self, shard: int) -> Dict[str, set]:
        """The creator/subject ids whose GDU states shard ``shard`` holds."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range 0..{self.num_shards - 1}")
        return {
            "creator": {c for c, s in self.creator_shard.items() if s == shard},
            "subject": {
                s for s, shards in self.subject_context.items()
                if shard in shards
            },
        }

    # -- serialization (workers receive the plan over process spawn) ---
    def to_dict(self) -> Dict:
        return {
            "num_shards": self.num_shards,
            "creator_shard": dict(self.creator_shard),
            "subject_shard": dict(self.subject_shard),
            "subject_context": {
                sid: list(shards) for sid, shards in self.subject_context.items()
            },
            "shard_weights": list(self.shard_weights),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ShardPlan":
        return cls(
            num_shards=int(payload["num_shards"]),
            creator_shard={k: int(v) for k, v in payload["creator_shard"].items()},
            subject_shard={k: int(v) for k, v in payload["subject_shard"].items()},
            subject_context={
                k: [int(s) for s in v]
                for k, v in payload["subject_context"].items()
            },
            shard_weights=[float(w) for w in payload["shard_weights"]],
        )


def _community_split(creator_comm, subject_comm, n_comm, article_creator,
                     num_shards: int):
    """Whole communities onto shards; context is closed, nothing replicated."""
    weights = community_article_weights(creator_comm, n_comm, article_creator)
    assignment = balanced_assignment(weights, num_shards)
    creator_rows = [assignment[creator_comm[row]]
                    for row in range(len(creator_comm))]
    subject_rows = [assignment[subject_comm[row]]
                    for row in range(len(subject_comm))]
    subject_ctx = [[shard] for shard in subject_rows]
    return creator_rows, subject_rows, subject_ctx


def _creator_split(num_creators, num_subjects, article_creator,
                   article_subject_gather, article_subject_segment,
                   num_shards: int):
    """The one-giant-component fallback: split creators, replicate subjects.

    Creators are bin-packed by article count; a subject's state is placed on
    every shard with an adjacent creator, and its routing home is the shard
    holding most of its article links (ties → the lowest shard id).
    """
    article_creator = np.asarray(article_creator, dtype=np.intp)
    creator_weights = np.bincount(article_creator, minlength=num_creators)
    creator_rows = balanced_assignment(
        [float(w) for w in creator_weights], num_shards
    )
    link_counts = np.zeros((num_subjects, num_shards), dtype=np.int64)
    gather = np.asarray(article_subject_gather, dtype=np.intp)
    segment = np.asarray(article_subject_segment, dtype=np.intp)
    for subject_row, article_row in zip(gather, segment):
        shard = creator_rows[article_creator[article_row]]
        link_counts[subject_row, shard] += 1
    subject_rows = []
    subject_ctx = []
    for row in range(num_subjects):
        counts = link_counts[row]
        shards = sorted(int(s) for s in np.nonzero(counts)[0])
        home = int(counts.argmax()) if shards else 0  # argmax ties → lowest
        subject_rows.append(home)
        subject_ctx.append(shards or [home])
    return creator_rows, subject_rows, subject_ctx
