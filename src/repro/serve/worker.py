"""Worker processes: model replicas with shard-local diffusion context.

Each :class:`WorkerHandle` owns one OS process running :func:`worker_main`:
load the directory checkpoint, build an :class:`repro.serve.InferenceSession`
restricted to the worker's shard context (see :class:`repro.serve.ShardPlan`),
then loop — drain a micro-batch from the request queue (dynamic batching:
up to ``max_batch_size`` items, waiting at most ``max_wait`` seconds after
the first), run one batched forward, and push per-request results to the
shared response queue. The wire between parent and worker carries only
plain dicts (protocol article payloads in, protocol prediction objects
out), so the parent never touches numpy state and the processes stay
restart-equivalent.

Messages
--------
parent → worker:  ``("predict", req_id, [article payload, ...], return_proba,
                  trace)`` — ``trace`` is ``None`` or ``{"trace_id",
                  "parent_id", "enqueued"}`` naming the front-end request
                  span this work belongs to — the profiler control
                  messages ``("profile_start", hz)``, ``("profile_snapshot",
                  req_id)``, ``("profile_stop",)`` — or the stop sentinel
                  ``("stop",)``
worker → parent:  ``("ready", worker_id, model_digest)`` once warm, then
                  ``("result", worker_id, req_id, [prediction, ...], stats,
                  spans)`` or ``("error", worker_id, req_id, message)``;
                  a ``("profile_snapshot", req_id)`` is answered with
                  ``("profile_result", worker_id, req_id, profile dict or
                  None)`` carrying the worker's folded-stack aggregate
                  (schema ``repro.obs.profile/1``)

``spans`` are finished span dicts (queue wait, batch assembly, GDU
forward, serialize) parented under the front-end request span; they use
``time.time()`` wall-clock stamps because ``perf_counter`` readings are
not comparable across processes. When a drift monitor is armed (the
checkpoint shipped a baseline), ``stats["drift"]`` carries the worker's
current window summary back on every result.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import queue as queue_mod
import time
from typing import Dict, List, Optional

#: Fallback result when a drained request cannot be answered.
_STOP = ("stop",)


def _drain_batch(requests, first, max_batch_size: int, max_wait: float) -> List:
    """Dynamic batching: coalesce queued predict messages behind ``first``."""
    batch = [first]
    deadline = time.monotonic() + max_wait
    while len(batch) < max_batch_size:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        try:
            message = requests.get(timeout=remaining)
        except queue_mod.Empty:
            break
        if message[0] != "predict":
            # Control message (stop / profiler): re-enqueue so the main
            # loop handles it after this batch.
            requests.put(message)
            break
        batch.append(message)
    return batch


def _request_trace(message) -> Optional[Dict]:
    """The trace dict of one predict message (``None`` pre-revision)."""
    return message[4] if len(message) > 4 else None


def worker_main(
    checkpoint: str,
    worker_id: int,
    shard: int,
    plan_payload: Optional[Dict],
    requests,
    responses,
    *,
    max_batch_size: int = 32,
    max_wait: float = 0.002,
    feature_cache_size: int = 2048,
    drift_baseline: Optional[str] = None,
    drift_threshold: float = 0.25,
    drift_window: int = 1024,
    drift_min_samples: int = 50,
    profile_hz: Optional[float] = None,
) -> None:
    """Process entry point: warm a session, then serve until ``("stop",)``."""
    from ..obs import get_logger
    from ..obs.drift import BaselineProfile, DriftMonitor
    from ..obs.flame import DEFAULT_HZ, SamplingProfiler, tag
    from ..obs.tracing import span_record
    from .checkpoint import checkpoint_digest, load_detector
    from .protocol import encode_prediction
    from .session import ArticleRequest, InferenceSession
    from .shard import ShardPlan

    log = get_logger("serve.worker")
    detector = load_detector(checkpoint)
    context_ids = None
    if plan_payload is not None:
        plan = ShardPlan.from_dict(plan_payload)
        if plan.num_shards > 1:
            context_ids = plan.context_ids(shard)
    drift = None
    if drift_baseline is not None:
        drift = DriftMonitor(
            BaselineProfile.load(drift_baseline),
            window=drift_window,
            threshold=drift_threshold,
            min_samples=drift_min_samples,
            shard=shard,
        )
    session = InferenceSession(
        detector,
        feature_cache_size=feature_cache_size,
        context_ids=context_ids,
        drift=drift,
    )
    digest = checkpoint_digest(checkpoint)
    # The profiler stays a local (never module state — RA203): it is born
    # after fork in this process, so its sampler thread and counts are
    # this worker's alone. Started post-warmup so checkpoint load and
    # session warming don't dominate the serving profile.
    profiler: Optional[SamplingProfiler] = None
    if profile_hz:
        profiler = SamplingProfiler(interval=1.0 / profile_hz).start()
    responses.put(("ready", worker_id, digest))
    log.info("warm", worker=worker_id, shard=shard, digest=digest)

    while True:
        try:
            message = requests.get(timeout=1.0)
        except queue_mod.Empty:
            # The stop sentinel is the normal exit; the timeout lets an
            # orphaned worker notice its parent died without the sentinel.
            parent = multiprocessing.parent_process()
            if parent is not None and not parent.is_alive():
                log.warning("orphaned", worker=worker_id)
                break
            continue
        if message[0] == "stop":
            break
        if message[0] == "profile_start":
            hz = message[1] or DEFAULT_HZ
            if profiler is not None:
                profiler.stop()
            profiler = SamplingProfiler(interval=1.0 / hz).start()
            continue
        if message[0] == "profile_snapshot":
            payload = None
            if profiler is not None:
                payload = profiler.snapshot(
                    meta={"worker": worker_id, "shard": shard}
                ).to_dict()
            responses.put(("profile_result", worker_id, message[1], payload))
            continue
        if message[0] == "profile_stop":
            if profiler is not None:
                profiler.stop()
                profiler = None
            continue
        recv_wall = time.time()
        batch = _drain_batch(requests, message, max_batch_size, max_wait)
        assembled_wall = time.time()
        start = time.perf_counter()
        # One forward for the whole micro-batch; probabilities are computed
        # when any rider asked, then stripped from the ones that did not.
        articles = []
        spans = []
        any_proba = False
        for entry in batch:
            payloads, return_proba = entry[2], entry[3]
            spans.append((len(articles), len(articles) + len(payloads), return_proba))
            articles.extend(ArticleRequest.from_dict(p) for p in payloads)
            any_proba = any_proba or return_proba
        try:
            # Tagged so sampled stacks carry the serving-stage ancestry:
            # workers have no live Tracer (they ship hand-built span
            # records), so the span observer can't label them.
            with tag("worker.forward"):
                predictions = session.predict(articles, return_proba=any_proba)
        except Exception as exc:
            log.error("batch_failed", worker=worker_id, error=repr(exc))
            for entry in batch:
                responses.put(("error", worker_id, entry[1], repr(exc)))
            continue
        forward_wall = time.time()
        seconds = time.perf_counter() - start
        stats = {
            "compute_ms": 1e3 * seconds,
            "batch_size": len(articles),
            "batch_requests": len(batch),
            "shard": shard,
        }
        if drift is not None:
            stats["drift"] = drift.summary()
        for (lo, hi, return_proba), entry in zip(spans, batch):
            req_id, trace = entry[1], _request_trace(entry)
            serialize_start = time.time()
            encoded = []
            for prediction in predictions[lo:hi]:
                if not return_proba:
                    prediction.proba = None
                encoded.append(encode_prediction(prediction, shard=shard))
            trace_spans = []
            if trace is not None:
                common = {
                    "trace_id": trace["trace_id"],
                    "parent_id": trace.get("parent_id"),
                }
                trace_spans = [
                    span_record(
                        "worker.queue_wait",
                        start=float(trace.get("enqueued", recv_wall)),
                        end=recv_wall,
                        worker=worker_id, shard=shard, **common,
                    ),
                    span_record(
                        "worker.batch_assembly",
                        start=recv_wall, end=assembled_wall,
                        batch_requests=len(batch), worker=worker_id, **common,
                    ),
                    span_record(
                        "worker.forward",
                        start=assembled_wall, end=forward_wall,
                        batch=len(articles), worker=worker_id, shard=shard,
                        **common,
                    ),
                    span_record(
                        "worker.serialize",
                        start=serialize_start, end=time.time(),
                        predictions=hi - lo, worker=worker_id, **common,
                    ),
                ]
            responses.put(
                ("result", worker_id, req_id, encoded, stats, trace_spans)
            )
    if profiler is not None:
        profiler.stop()
    log.info("stopped", worker=worker_id, shard=shard)


@dataclasses.dataclass
class WorkerHandle:
    """Parent-side view of one worker process."""

    worker_id: int
    shard: int
    process: multiprocessing.Process
    requests: "multiprocessing.Queue"
    #: outstanding requests (parent-maintained, admission-control input)
    inflight: int = 0
    model_digest: str = ""

    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self, timeout: float = 5.0) -> None:
        if self.process.is_alive():
            self.requests.put(_STOP)
            self.process.join(timeout)
        if self.process.is_alive():  # drain-free hard stop
            self.process.terminate()
            self.process.join(timeout)


def spawn_worker(
    checkpoint: str,
    worker_id: int,
    shard: int,
    plan_payload: Optional[Dict],
    responses,
    *,
    max_batch_size: int = 32,
    max_wait: float = 0.002,
    feature_cache_size: int = 2048,
    drift_baseline: Optional[str] = None,
    drift_threshold: float = 0.25,
    drift_window: int = 1024,
    drift_min_samples: int = 50,
    profile_hz: Optional[float] = None,
    mp_context=None,
) -> WorkerHandle:
    """Start one worker process and return its parent-side handle."""
    ctx = mp_context or multiprocessing.get_context()
    requests = ctx.Queue()
    process = ctx.Process(
        target=worker_main,
        args=(str(checkpoint), worker_id, shard, plan_payload, requests, responses),
        kwargs={
            "max_batch_size": max_batch_size,
            "max_wait": max_wait,
            "feature_cache_size": feature_cache_size,
            "drift_baseline": drift_baseline,
            "drift_threshold": drift_threshold,
            "drift_window": drift_window,
            "drift_min_samples": drift_min_samples,
            "profile_hz": profile_hz,
        },
        daemon=True,
        name=f"repro-serve-worker-{worker_id}",
    )
    process.start()
    return WorkerHandle(
        worker_id=worker_id, shard=shard, process=process, requests=requests
    )
