"""Text pipeline: tokenization, vocabulary, explicit features, sequences."""

from .features import (
    BagOfWordsExtractor,
    chi_squared_scores,
    frequency_ratio_scores,
    select_discriminative_words,
)
from .sequences import encode_batch, encode_sequence, infer_max_length, sequence_lengths
from .sparse import CsrMatrix, csr_from_token_docs
from .tokenizer import STOP_WORDS, remove_stop_words, tokenize, tokenize_clean
from .vocabulary import PAD_INDEX, PAD_TOKEN, UNK_INDEX, UNK_TOKEN, Vocabulary

__all__ = [
    "tokenize",
    "tokenize_clean",
    "remove_stop_words",
    "STOP_WORDS",
    "Vocabulary",
    "PAD_TOKEN",
    "UNK_TOKEN",
    "PAD_INDEX",
    "UNK_INDEX",
    "BagOfWordsExtractor",
    "select_discriminative_words",
    "chi_squared_scores",
    "frequency_ratio_scores",
    "encode_sequence",
    "encode_batch",
    "sequence_lengths",
    "infer_max_length",
    "CsrMatrix",
    "csr_from_token_docs",
]
