"""Explicit feature extraction: discriminative word sets and bag-of-words.

Implements §4.1.1 of the paper. From the full vocabulary ``W``, per-entity
word sets ``W_n ⊂ W`` (articles), ``W_u`` (creator profiles) and ``W_s``
(subject descriptions) of size ``d`` are pre-extracted; the explicit feature
of an entity is the count vector of those words in its text.

The paper says the sets contain words that "have shown their stronger
correlations with their fake/true labels"; we implement two standard
selection criteria — chi-squared association and log frequency-ratio —
selectable via ``method``.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence

import numpy as np

from .sparse import CsrMatrix, csr_from_token_docs
from .tokenizer import STOP_WORDS


def chi_squared_scores(
    documents: Sequence[Sequence[str]],
    labels: Sequence[int],
    min_count: int = 2,
) -> Dict[str, float]:
    """Per-word chi-squared association with binary document labels.

    Parameters
    ----------
    documents:
        Token lists, one per document.
    labels:
        Binary labels (0/1) aligned with ``documents``.
    min_count:
        Words with fewer document occurrences are skipped.

    Returns a ``{word: chi2}`` dict; higher means more label-discriminative.
    """
    labels = np.asarray(labels)
    if len(documents) != len(labels):
        raise ValueError("documents and labels must have equal length")
    if len(documents) == 0:
        return {}
    unique = set(labels.tolist())
    if not unique <= {0, 1}:
        raise ValueError(f"chi_squared_scores expects binary labels, got {sorted(unique)}")

    n_docs = len(documents)
    n_pos = int(labels.sum())
    n_neg = n_docs - n_pos
    doc_freq: Counter = Counter()
    pos_freq: Counter = Counter()
    for doc, label in zip(documents, labels):
        seen = set(doc) - STOP_WORDS
        doc_freq.update(seen)
        if label == 1:
            pos_freq.update(seen)

    scores: Dict[str, float] = {}
    for word, df in doc_freq.items():
        if df < min_count:
            continue
        # 2x2 contingency: word-present x label.
        a = pos_freq.get(word, 0)          # present, positive
        b = df - a                          # present, negative
        c = n_pos - a                       # absent, positive
        d = n_neg - b                       # absent, negative
        numer = n_docs * (a * d - b * c) ** 2
        denom = (a + b) * (c + d) * (a + c) * (b + d)
        scores[word] = numer / denom if denom > 0 else 0.0
    return scores


def frequency_ratio_scores(
    documents: Sequence[Sequence[str]],
    labels: Sequence[int],
    min_count: int = 2,
    smoothing: float = 1.0,
) -> Dict[str, float]:
    """Absolute log-odds of word occurrence between the two classes."""
    labels = np.asarray(labels)
    if len(documents) != len(labels):
        raise ValueError("documents and labels must have equal length")
    pos_freq: Counter = Counter()
    neg_freq: Counter = Counter()
    for doc, label in zip(documents, labels):
        seen = set(doc) - STOP_WORDS
        (pos_freq if label == 1 else neg_freq).update(seen)
    n_pos = max(1, int(labels.sum()))
    n_neg = max(1, len(labels) - n_pos)
    scores: Dict[str, float] = {}
    for word in set(pos_freq) | set(neg_freq):
        total = pos_freq.get(word, 0) + neg_freq.get(word, 0)
        if total < min_count:
            continue
        p_pos = (pos_freq.get(word, 0) + smoothing) / (n_pos + 2 * smoothing)
        p_neg = (neg_freq.get(word, 0) + smoothing) / (n_neg + 2 * smoothing)
        scores[word] = abs(float(np.log(p_pos / p_neg)))
    return scores


def select_discriminative_words(
    documents: Sequence[Sequence[str]],
    labels: Sequence[int],
    size: int,
    method: str = "chi2",
    min_count: int = 2,
) -> List[str]:
    """Pick the ``size`` most label-discriminative words (the W_n/W_u/W_s sets).

    ``labels`` may be multi-level credibility indices; they are binarized at
    the midpoint (paper's bi-class grouping) before scoring.
    """
    if size <= 0:
        raise ValueError("size must be positive")
    labels = np.asarray(labels)
    if labels.size and set(np.unique(labels).tolist()) - {0, 1}:
        # Binarize multi-level labels around the midpoint.
        midpoint = (labels.max() + labels.min()) / 2.0
        labels = (labels > midpoint).astype(int)
    if method == "chi2":
        scores = chi_squared_scores(documents, labels, min_count=min_count)
    elif method == "freq_ratio":
        scores = frequency_ratio_scores(documents, labels, min_count=min_count)
    else:
        raise ValueError(f"unknown selection method {method!r}")
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return [word for word, _ in ranked[:size]]


class BagOfWordsExtractor:
    """Count-vector featurizer over a fixed word set (the explicit features).

    Given pre-extracted word set ``words`` (e.g. W_n), entity text maps to
    ``x^e ∈ R^d`` where ``x^e[k]`` is the appearance count of ``words[k]``,
    optionally reweighted by inverse document frequency (``weighting="tfidf"``
    after calling :meth:`fit_idf`).
    """

    def __init__(
        self,
        words: Sequence[str],
        normalize: bool = False,
        weighting: str = "count",
    ):
        if not words:
            raise ValueError("word set must be non-empty")
        if len(set(words)) != len(words):
            raise ValueError("word set contains duplicates")
        if weighting not in ("count", "tfidf"):
            raise ValueError(f"weighting must be 'count' or 'tfidf', got {weighting!r}")
        self.words = list(words)
        self.normalize = normalize
        self.weighting = weighting
        self.idf: Optional[np.ndarray] = None
        self._word_to_index = {w: i for i, w in enumerate(self.words)}

    @property
    def dim(self) -> int:
        return len(self.words)

    def fit_idf(self, documents: Sequence[Sequence[str]]) -> "BagOfWordsExtractor":
        """Compute smoothed inverse document frequencies from a corpus.

        ``idf[k] = ln((1 + N) / (1 + df_k)) + 1`` — the conventional smooth
        variant that never zeroes a word out entirely.
        """
        n_docs = len(documents)
        df = np.zeros(self.dim, dtype=np.float64)
        for doc in documents:
            seen = set(doc) & self._word_to_index.keys()
            for word in seen:
                df[self._word_to_index[word]] += 1.0
        self.idf = np.log((1.0 + n_docs) / (1.0 + df)) + 1.0
        return self

    def transform_one(self, tokens: Sequence[str]) -> np.ndarray:
        """Featurize one token list into a (weighted) count vector (d,)."""
        vec = np.zeros(self.dim, dtype=np.float64)
        for tok in tokens:
            idx = self._word_to_index.get(tok)
            if idx is not None:
                vec[idx] += 1.0
        if self.weighting == "tfidf":
            if self.idf is None:
                raise RuntimeError("call fit_idf() before tfidf transforms")
            vec *= self.idf
        if self.normalize:
            norm = np.linalg.norm(vec)
            if norm > 0:
                vec /= norm
        return vec

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serializable representation (inverse of :meth:`from_dict`).

        Floats survive a JSON round trip exactly in Python, so a restored
        extractor produces bit-identical feature vectors.
        """
        return {
            "words": list(self.words),
            "normalize": self.normalize,
            "weighting": self.weighting,
            "idf": self.idf.tolist() if self.idf is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "BagOfWordsExtractor":
        """Rebuild an extractor from :meth:`to_dict` output."""
        extractor = cls(
            payload["words"],
            normalize=payload["normalize"],
            weighting=payload["weighting"],
        )
        if payload.get("idf") is not None:
            extractor.idf = np.asarray(payload["idf"], dtype=np.float64)
        return extractor

    def transform_csr(self, documents: Sequence[Sequence[str]]) -> "CsrMatrix":
        """Featurize many documents into a :class:`CsrMatrix` batch.

        The sparse path the pipeline and the serving session use: one CSR
        construction pass, then tf-idf scaling and L2 normalization as
        vectorized operations over the non-zeros only. Values match
        :meth:`transform_one` (same counts, same idf products; the L2 norm
        is accumulated over the non-zeros instead of the full row).
        """
        csr = csr_from_token_docs(documents, self._word_to_index, self.dim)
        if self.weighting == "tfidf":
            if self.idf is None:
                raise RuntimeError("call fit_idf() before tfidf transforms")
            csr.scale_columns(self.idf)
        if self.normalize:
            csr.normalize_rows()
        return csr

    def transform(self, documents: Sequence[Sequence[str]]) -> np.ndarray:
        """Featurize many documents into an (n, d) matrix (CSR-backed)."""
        return self.transform_csr(documents).to_dense()

    @classmethod
    def fit(
        cls,
        documents: Sequence[Sequence[str]],
        labels: Sequence[int],
        size: int,
        method: str = "chi2",
        normalize: bool = False,
        min_count: int = 2,
        weighting: str = "count",
    ) -> "BagOfWordsExtractor":
        """Select a discriminative word set from labeled docs and build an extractor.

        Falls back to the most frequent non-stop words when the labeled
        corpus is too small to fill ``size`` discriminative slots, so the
        explicit feature dimension is stable across folds.
        """
        words = select_discriminative_words(
            documents, labels, size=size, method=method, min_count=min_count
        )
        if len(words) < size:
            fill = Counter()
            for doc in documents:
                fill.update(t for t in doc if t not in STOP_WORDS)
            for word, _ in fill.most_common():
                if word not in words:
                    words.append(word)
                if len(words) == size:
                    break
        if not words:
            raise ValueError("could not extract any words from the corpus")
        extractor = cls(words[:size], normalize=normalize, weighting=weighting)
        if weighting == "tfidf":
            extractor.fit_idf(documents)
        return extractor
