"""Padded index-sequence encoding for the latent-feature RNN.

The paper represents an article as a word-vector sequence
``(x_1, ..., x_q)`` where ``q`` is the maximum article length and shorter
texts are zero-padded (§4.1.2). This module turns token lists into fixed
shape integer matrices feeding :class:`repro.autograd.GRUEncoder`.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .vocabulary import PAD_INDEX, Vocabulary


def encode_sequence(
    tokens: Sequence[str],
    vocab: Vocabulary,
    max_length: int,
    truncate: str = "tail",
) -> np.ndarray:
    """Encode one token list to a length-``max_length`` index vector.

    Parameters
    ----------
    tokens:
        The token list.
    vocab:
        Token dictionary (unknown tokens map to the UNK index).
    max_length:
        Target length ``q``; shorter sequences are right-padded with zeros.
    truncate:
        ``"tail"`` keeps the first ``max_length`` tokens; ``"head"`` keeps
        the last ones.
    """
    if max_length <= 0:
        raise ValueError("max_length must be positive")
    indices = vocab.encode(tokens)
    if len(indices) > max_length:
        if truncate == "tail":
            indices = indices[:max_length]
        elif truncate == "head":
            indices = indices[-max_length:]
        else:
            raise ValueError(f"unknown truncate mode {truncate!r}")
    out = np.full(max_length, PAD_INDEX, dtype=np.int64)
    out[: len(indices)] = indices
    return out


def encode_batch(
    documents: Sequence[Sequence[str]],
    vocab: Vocabulary,
    max_length: int,
    truncate: str = "tail",
) -> np.ndarray:
    """Encode many token lists into an (n, max_length) index matrix."""
    out = np.full((len(documents), max_length), PAD_INDEX, dtype=np.int64)
    for i, doc in enumerate(documents):
        out[i] = encode_sequence(doc, vocab, max_length, truncate=truncate)
    return out


def sequence_lengths(batch: np.ndarray) -> np.ndarray:
    """Number of non-pad positions per row of an encoded batch."""
    return (np.asarray(batch) != PAD_INDEX).sum(axis=-1)


def infer_max_length(documents: Sequence[Sequence[str]], percentile: float = 95.0, cap: int = 64) -> int:
    """Choose ``q`` as a percentile of observed lengths, capped for CPU cost.

    The paper sets q to "the maximum length of articles"; on a pure-numpy
    substrate that is wasteful, so the default covers the 95th percentile.
    """
    if not documents:
        return 1
    lengths: List[int] = [len(d) for d in documents]
    q = int(np.ceil(np.percentile(lengths, percentile)))
    return int(max(1, min(q, cap)))
