"""Minimal CSR sparse matrix for bag-of-words explicit features.

A BoW explicit feature row has at most ``len(tokens)`` non-zeros out of a
``d``-wide vocabulary slice, so building the ``(n, d)`` matrix densely — one
Python loop per token per document (the old ``BagOfWordsExtractor.transform``)
— wastes both the zero writes and the per-row interpreter overhead. This
module stores the batch in compressed sparse row form (``indptr`` /
``indices`` / ``data``) built from one vocabulary lookup pass, then applies
tf-idf scaling, L2 row normalization, densification, and dense right-matmul
as vectorized numpy over the non-zeros only.

No scipy in the environment; this is the ~80-line subset the feature
pipeline needs, not a general sparse-algebra library.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


class CsrMatrix:
    """Compressed-sparse-row float64 matrix (rows = documents).

    Invariants: ``indices[indptr[i]:indptr[i+1]]`` are the strictly
    increasing column ids of row ``i`` (duplicates pre-aggregated) and
    ``values`` holds the matching entries.
    """

    __slots__ = ("indptr", "indices", "values", "shape")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
        shape: tuple,
    ):
        self.indptr = indptr
        self.indices = indices
        self.values = values
        self.shape = shape

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def row_ids(self) -> np.ndarray:
        """Expanded row id per stored non-zero (the COO row vector)."""
        n = self.shape[0]
        return np.repeat(np.arange(n, dtype=np.intp), np.diff(self.indptr))

    # ------------------------------------------------------------------
    def scale_columns(self, weights: np.ndarray) -> "CsrMatrix":
        """In-place ``M[:, j] *= weights[j]`` (tf-idf reweighting)."""
        if weights.shape != (self.shape[1],):
            raise ValueError(
                f"column weights shape {weights.shape} != ({self.shape[1]},)"
            )
        self.values *= weights[self.indices]
        return self

    def normalize_rows(self) -> "CsrMatrix":
        """In-place L2 row normalization; all-zero rows stay zero."""
        sq = np.bincount(
            self.row_ids(), weights=self.values * self.values,
            minlength=self.shape[0],
        )
        norms = np.sqrt(sq)
        scale = np.ones_like(norms)
        nonzero = norms > 0
        scale[nonzero] = 1.0 / norms[nonzero]
        self.values *= scale[self.row_ids()]
        return self

    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize the full ``(n, d)`` array with one scatter."""
        out = np.zeros(self.shape, dtype=np.float64)
        out[self.row_ids(), self.indices] = self.values
        return out

    def matmul(self, dense: np.ndarray) -> np.ndarray:
        """``self @ dense`` over non-zeros only: ``(n, d) @ (d, k)``."""
        if dense.ndim != 2 or dense.shape[0] != self.shape[1]:
            raise ValueError(
                f"matmul shape mismatch: {self.shape} @ {dense.shape}"
            )
        out = np.zeros((self.shape[0], dense.shape[1]), dtype=np.float64)
        np.add.at(out, self.row_ids(), self.values[:, None] * dense[self.indices])
        return out


def csr_from_token_docs(
    documents: Sequence[Sequence[str]],
    word_to_index: Dict[str, int],
    dim: int,
) -> CsrMatrix:
    """Count-vector CSR batch from token lists (the BoW construction).

    One dict lookup per token (the unavoidable Python part), then the
    per-document unique/count aggregation runs in numpy.
    """
    n = len(documents)
    indptr = np.zeros(n + 1, dtype=np.intp)
    idx_chunks = []
    cnt_chunks = []
    for i, doc in enumerate(documents):
        hits = [word_to_index[tok] for tok in doc if tok in word_to_index]
        if hits:
            uniq, counts = np.unique(
                np.asarray(hits, dtype=np.intp), return_counts=True
            )
            idx_chunks.append(uniq)
            cnt_chunks.append(counts.astype(np.float64))
            indptr[i + 1] = indptr[i] + uniq.size
        else:
            indptr[i + 1] = indptr[i]
    if idx_chunks:
        indices = np.concatenate(idx_chunks)
        values = np.concatenate(cnt_chunks)
    else:
        indices = np.zeros(0, dtype=np.intp)
        values = np.zeros(0, dtype=np.float64)
    return CsrMatrix(indptr, indices, values, (n, dim))
