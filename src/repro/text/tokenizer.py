"""Tokenization and stop-word handling for PolitiFact-style political text.

The paper's Figure 1(b)/(c) word clouds are built "where the stop words have
been removed already"; :data:`STOP_WORDS` reproduces a conventional English
stop list sufficient for that analysis.
"""

from __future__ import annotations

import re
from typing import Iterable, List

_TOKEN_RE = re.compile(r"[A-Za-z0-9']+")

# A compact English stop list (Fox 1989 style) covering the function words
# that dominate political statements.
STOP_WORDS = frozenset(
    """
    a about above after again against all am an and any are aren't as at be
    because been before being below between both but by can can't cannot could
    couldn't did didn't do does doesn't doing don't down during each few for
    from further had hadn't has hasn't have haven't having he he'd he'll he's
    her here here's hers herself him himself his how how's i i'd i'll i'm i've
    if in into is isn't it it's its itself let's me more most mustn't my myself
    no nor not of off on once only or other ought our ours ourselves out over
    own same shan't she she'd she'll she's should shouldn't so some such than
    that that's the their theirs them themselves then there there's these they
    they'd they'll they're they've this those through to too under until up
    very was wasn't we we'd we'll we're we've were weren't what what's when
    when's where where's which while who who's whom why why's will with won't
    would wouldn't you you'd you'll you're you've your yours yourself
    yourselves
    """.split()
)


def tokenize(text: str, lowercase: bool = True) -> List[str]:
    """Split ``text`` into word tokens.

    Keeps alphanumerics and internal apostrophes ("don't" stays one token),
    drops punctuation. Lowercases by default so the explicit feature counts
    are case-insensitive, matching the paper's word-frequency treatment.
    """
    if lowercase:
        text = text.lower()
    return _TOKEN_RE.findall(text)


def remove_stop_words(tokens: Iterable[str]) -> List[str]:
    """Filter out stop words (used for Figure 1 frequent-word analysis)."""
    return [t for t in tokens if t not in STOP_WORDS]


def tokenize_clean(text: str) -> List[str]:
    """Tokenize then remove stop words in one call."""
    return remove_stop_words(tokenize(text))
