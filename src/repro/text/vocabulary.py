"""Vocabulary: bidirectional token <-> index mapping with frequency stats.

Index 0 is reserved for padding and index 1 for unknown tokens, matching the
zero-padding treatment of the paper's latent feature RNN (§4.1.2).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

PAD_TOKEN = "<pad>"
UNK_TOKEN = "<unk>"
PAD_INDEX = 0
UNK_INDEX = 1


class Vocabulary:
    """Token dictionary built from a corpus of token lists.

    Parameters
    ----------
    max_size:
        Keep at most this many non-special tokens (most frequent first).
    min_count:
        Drop tokens seen fewer than this many times.
    """

    def __init__(self, max_size: Optional[int] = None, min_count: int = 1):
        if max_size is not None and max_size <= 0:
            raise ValueError("max_size must be positive")
        if min_count < 1:
            raise ValueError("min_count must be >= 1")
        self.max_size = max_size
        self.min_count = min_count
        self._token_to_index: Dict[str, int] = {PAD_TOKEN: PAD_INDEX, UNK_TOKEN: UNK_INDEX}
        self._index_to_token: List[str] = [PAD_TOKEN, UNK_TOKEN]
        self.counts: Counter = Counter()

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        documents: Iterable[Sequence[str]],
        max_size: Optional[int] = None,
        min_count: int = 1,
    ) -> "Vocabulary":
        """Construct a vocabulary from an iterable of token sequences."""
        vocab = cls(max_size=max_size, min_count=min_count)
        for doc in documents:
            vocab.counts.update(doc)
        eligible = [
            (tok, cnt) for tok, cnt in vocab.counts.items() if cnt >= min_count
        ]
        # Sort by (-count, token) for a deterministic ordering.
        eligible.sort(key=lambda item: (-item[1], item[0]))
        if max_size is not None:
            eligible = eligible[:max_size]
        for tok, _ in eligible:
            vocab._add(tok)
        return vocab

    def _add(self, token: str) -> int:
        if token in self._token_to_index:
            return self._token_to_index[token]
        index = len(self._index_to_token)
        self._token_to_index[token] = index
        self._index_to_token.append(token)
        return index

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_index

    def index(self, token: str) -> int:
        """Return the index of ``token`` (UNK index if absent)."""
        return self._token_to_index.get(token, UNK_INDEX)

    def token(self, index: int) -> str:
        """Return the token at ``index``."""
        return self._index_to_token[index]

    def encode(self, tokens: Sequence[str]) -> List[int]:
        """Map a token sequence to indices."""
        return [self.index(t) for t in tokens]

    def decode(self, indices: Sequence[int]) -> List[str]:
        """Map indices back to tokens (pads are dropped)."""
        return [self._index_to_token[i] for i in indices if i != PAD_INDEX]

    @property
    def tokens(self) -> List[str]:
        """All tokens including the two specials, in index order."""
        return list(self._index_to_token)

    def most_common(self, k: int) -> List[tuple[str, int]]:
        """Top-k (token, count) pairs from the building corpus."""
        return self.counts.most_common(k)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serializable representation (inverse of :meth:`from_dict`)."""
        return {
            "max_size": self.max_size,
            "min_count": self.min_count,
            "tokens": self._index_to_token[2:],  # specials are implicit
            "counts": dict(self.counts),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Vocabulary":
        """Rebuild a vocabulary from :meth:`to_dict` output."""
        vocab = cls(max_size=payload["max_size"], min_count=payload["min_count"])
        for tok in payload["tokens"]:
            vocab._add(tok)
        vocab.counts = Counter(payload["counts"])
        return vocab

    def save(self, path: Union[str, Path]) -> None:
        """Persist the vocabulary as JSON."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Vocabulary":
        """Load a vocabulary saved by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))
