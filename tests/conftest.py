"""Shared fixtures: small seeded corpora and splits reused across test modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import GeneratorConfig, PolitiFactGenerator
from repro.graph.sampling import tri_splits


@pytest.fixture(scope="session", autouse=True)
def _session_runs_dir(tmp_path_factory):
    """Session-wide run-registry isolation.

    The function-scoped guard below does not cover module/class/session
    fixtures (they are set up before it), so a broad-scoped fixture calling
    ``repro train`` would litter the checkout's ``results/runs``. This
    backstop catches those.
    """
    patch = pytest.MonkeyPatch()
    patch.setenv("REPRO_RUNS_DIR", str(tmp_path_factory.mktemp("runs-session")))
    yield
    patch.undo()


@pytest.fixture(autouse=True)
def _isolated_runs_dir(tmp_path, monkeypatch):
    """Point the run registry at a fresh per-test tmp dir.

    ``repro train`` writes a run record by default; tests asserting on
    registry contents need an empty registry each time.
    """
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))


@pytest.fixture(scope="session")
def small_dataset():
    """A ~300-article corpus; session-scoped because generation is pure."""
    config = GeneratorConfig(scale=0.02, seed=11)
    return PolitiFactGenerator(config).generate()


@pytest.fixture(scope="session")
def tiny_dataset():
    """A minimal corpus for fast structural tests."""
    config = GeneratorConfig(
        num_articles=60, num_creators=12, num_subjects=10, seed=3,
        include_case_studies=False,
    )
    return PolitiFactGenerator(config).generate()


@pytest.fixture(scope="session")
def small_split(small_dataset):
    return next(
        tri_splits(
            sorted(small_dataset.articles),
            sorted(small_dataset.creators),
            sorted(small_dataset.subjects),
            k=10,
            seed=0,
        )
    )


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    return next(
        tri_splits(
            sorted(tiny_dataset.articles),
            sorted(tiny_dataset.creators),
            sorted(tiny_dataset.subjects),
            k=5,
            seed=0,
        )
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
