"""Test helpers shared across modules."""

from __future__ import annotations

import numpy as np


def finite_difference_check(func, tensors, eps: float = 1e-6, tol: float = 1e-5) -> None:
    """Compare analytic grads of scalar ``func(*tensors)`` to central differences."""
    out = func(*tensors)
    for t in tensors:
        t.zero_grad()
    out = func(*tensors)
    out.backward()
    for t in tensors:
        if not t.requires_grad:
            continue
        analytic = t.grad
        numeric = np.zeros_like(t.data)
        flat = t.data.reshape(-1)
        num_flat = numeric.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            plus = float(func(*tensors).item())
            flat[i] = orig - eps
            minus = float(func(*tensors).item())
            flat[i] = orig
            num_flat[i] = (plus - minus) / (2 * eps)
        err = np.abs(analytic - numeric).max()
        assert err < tol, f"gradient mismatch {err} for tensor of shape {t.shape}"
