"""Architecture pass (RA1xx) over fixture trees and the real package.

Each rule gets at least one seeded true positive in a synthetic package
and one no-false-positive check against the real ``src/repro`` tree (the
tier-1 gate asserts global cleanliness; here we assert per-rule).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import ProgramIndex, lint_sources, render_deps
from repro.analysis.arch import LAYERS, layer_of
from repro.analysis.program import module_name_for

pytestmark = pytest.mark.analysis

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def _lint(sources, select=None):
    return lint_sources(sources, select=select, passes=["arch"], package="pkg")


def _rules(result):
    return sorted({f.rule for f in result.findings})


def _real_tree_result(select):
    from repro.analysis import lint_paths

    return lint_paths([SRC], select=select, passes=["arch"])


class TestProgramIndex:
    def test_module_name_for_anchors_at_package(self):
        assert module_name_for(Path("src/repro/serve/worker.py")) == "repro.serve.worker"
        assert module_name_for(Path("src/repro/__init__.py")) == "repro"
        assert module_name_for(Path("scratch.py")) == "scratch"

    def test_import_graph_drops_ancestor_package_edges(self):
        # ``from . import sibling`` names the parent package; that edge is
        # implicit in every submodule and must not create pseudo-cycles.
        index = ProgramIndex(package="pkg")
        index.add_source("pkg/__init__.py", "from .a import f\n")
        index.add_source("pkg/a.py", "from . import b\n\ndef f():\n    pass\n")
        index.add_source("pkg/b.py", "X = 1\n")
        graph = index.import_graph()
        assert "pkg" not in graph["pkg.a"]
        assert "pkg.b" in graph["pkg.a"]
        assert index.import_cycles() == []

    def test_import_cycles_found(self):
        index = ProgramIndex(package="pkg")
        index.add_source("pkg/a.py", "from pkg import b\n")
        index.add_source("pkg/b.py", "import pkg.a\n")
        cycles = index.import_cycles()
        assert len(cycles) == 1
        assert set(cycles[0]) == {"pkg.a", "pkg.b"}

    def test_deferred_imports_do_not_cycle(self):
        index = ProgramIndex(package="pkg")
        index.add_source("pkg/a.py", "from pkg import b\n")
        index.add_source(
            "pkg/b.py", "def f():\n    from pkg import a\n    return a\n"
        )
        assert index.import_cycles() == []

    def test_used_names_includes_all_strings_and_getattr(self):
        index = ProgramIndex(package="pkg")
        index.add_source(
            "pkg/a.py",
            '__all__ = ["exported"]\n\n'
            "def exported():\n    pass\n\n"
            "def reflected():\n    pass\n",
        )
        index.add_source(
            "pkg/b.py", 'import pkg.a\nf = getattr(pkg.a, "reflected")\n'
        )
        used = index.used_names()
        assert "exported" in used and "reflected" in used

    def test_render_deps_text_and_dot(self):
        index = ProgramIndex(package="pkg")
        index.add_source("pkg/a.py", "from pkg import b\n")
        index.add_source("pkg/b.py", "X = 1\n")
        text = render_deps(index, collapse=False)
        assert "pkg.a" in text and "pkg.b" in text
        dot = render_deps(index, dot=True, collapse=False)
        assert dot.startswith("digraph") and '"pkg.a" -> "pkg.b"' in dot

    def test_layer_table_covers_every_real_subpackage(self):
        index = ProgramIndex(package="repro")
        for path in sorted(SRC.rglob("*.py")):
            index.add_source(path.as_posix(), path.read_text(encoding="utf-8"))
        for name in index.modules:
            assert layer_of(index, name) is not None, name
        assert LAYERS["autograd"] < LAYERS["core"] < LAYERS["cli"]


class TestLayeringRule:
    def test_eager_upward_import_flagged(self):
        result = _lint({
            "pkg/autograd/t.py": "from pkg.serve import s\n",
            "pkg/serve/s.py": "X = 1\n",
        }, select=["RA101"])
        assert _rules(result) == ["RA101"]
        finding = result.findings[0]
        assert "layer 0" in finding.message and "layer 4" in finding.message
        assert len(finding.evidence) == 2

    def test_deferred_upward_import_sanctioned(self):
        result = _lint({
            "pkg/autograd/t.py": (
                "def save():\n    from pkg.serve import s\n    return s\n"
            ),
            "pkg/serve/s.py": "X = 1\n",
        }, select=["RA101"])
        assert result.findings == []

    def test_cli_import_flagged_even_deferred(self):
        result = _lint({
            "pkg/core/m.py": (
                "def run():\n    from pkg.cli import main\n    main()\n"
            ),
            "pkg/cli/__init__.py": "def main():\n    pass\n",
        })
        assert any(
            f.rule == "RA101" and "not a library" in f.message
            for f in result.findings
        )

    def test_real_tree_has_no_layering_violations(self):
        assert _real_tree_result(["RA101"]).findings == []


class TestImportCycleRule:
    def test_cycle_flagged_with_per_module_evidence(self):
        result = _lint({
            "pkg/core/a.py": "from pkg.core import b\n",
            "pkg/core/b.py": "from pkg.core import a\n",
        })
        cycles = [f for f in result.findings if f.rule == "RA102"]
        assert len(cycles) == 1
        assert len(cycles[0].evidence) == 2

    def test_real_tree_is_acyclic(self):
        assert _real_tree_result(["RA102"]).findings == []


class TestDeadModuleRule:
    def test_unimported_module_flagged(self):
        result = _lint({
            "pkg/core/used.py": "X = 1\n",
            "pkg/core/orphan.py": "Y = 2\n",
            "pkg/core/hub.py": "from pkg.core import used\n",
        })
        paths = {f.path for f in result.findings if f.rule == "RA103"}
        assert "pkg/core/orphan.py" in paths
        assert "pkg/core/used.py" not in paths

    def test_entry_points_exempt(self):
        result = _lint({
            "pkg/cli/tool.py": "X = 1\n",
            "pkg/__main__.py": "Y = 2\n",
        })
        assert not [f for f in result.findings if f.rule == "RA103"]

    def test_real_tree_has_no_dead_modules(self):
        assert _real_tree_result(["RA103"]).findings == []


class TestDeadSymbolRule:
    def test_unreferenced_public_function_flagged(self):
        result = _lint({
            "pkg/core/m.py": "def never_called():\n    pass\n",
            "pkg/core/n.py": "from pkg.core import m\n",
        }, select=["RA104"])
        assert _rules(result) == ["RA104"]

    def test_all_declaration_marks_intended_api(self):
        result = _lint({
            "pkg/core/m.py": (
                '__all__ = ["never_called"]\n\n'
                "def never_called():\n    pass\n"
            ),
            "pkg/core/n.py": "from pkg.core import m\n",
        })
        assert not [f for f in result.findings if f.rule == "RA104"]

    def test_deprecated_method_without_callers_flagged(self):
        result = _lint({
            "pkg/core/m.py": (
                "class API:\n"
                "    def old(self):\n"
                '        """Deprecated alias for new()."""\n'
                "        return self.new()\n\n"
                "    def new(self):\n"
                "        return 1\n"
            ),
            "pkg/core/n.py": "from pkg.core.m import API\n\nAPI().new()\n",
        })
        dead = [f for f in result.findings if f.rule == "RA104"]
        assert len(dead) == 1 and "API.old()" in dead[0].message

    def test_non_deprecated_uncalled_method_not_flagged(self):
        # General method liveness is out of scope — only deprecation-marked
        # methods are held to the never-called standard.
        result = _lint({
            "pkg/core/m.py": (
                "class API:\n"
                "    def helper(self):\n"
                "        return 1\n"
            ),
            "pkg/core/n.py": "from pkg.core.m import API\n\nAPI()\n",
        })
        assert not [f for f in result.findings if f.rule == "RA104"]

    def test_real_tree_has_no_dead_symbols(self):
        assert _real_tree_result(["RA104"]).findings == []
