"""Concurrency/fork-safety pass (RA2xx): seeded positives + real-tree FPs.

Each rule gets a synthetic true positive and the no-false-positive
contract on the real serving/obs modules (which went through a fix-or-
suppress sweep exactly so these stay clean).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_sources

pytestmark = pytest.mark.analysis

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def _lint(sources, select=None):
    return lint_sources(
        sources, select=select, passes=["concurrency"], package="pkg"
    )


def _by_rule(result, rule):
    return [f for f in result.findings if f.rule == rule]


def _real(select):
    from repro.analysis import lint_paths

    return lint_paths([SRC], select=select, passes=["concurrency"])


class TestExplicitAcquire:
    def test_bare_acquire_flagged(self):
        result = _lint({
            "pkg/serve/m.py": (
                "import threading\n"
                "lock = threading.Lock()\n\n"
                "def f():\n"
                "    lock.acquire()\n"
                "    lock.release()\n"
            ),
        })
        found = _by_rule(result, "RA201")
        assert len(found) == 1 and found[0].line == 5

    def test_with_block_ok(self):
        result = _lint({
            "pkg/serve/m.py": (
                "import threading\n"
                "lock = threading.Lock()\n\n"
                "def f():\n"
                "    with lock:\n"
                "        pass\n"
            ),
        })
        assert not _by_rule(result, "RA201")

    def test_real_tree_clean(self):
        assert not _real(["RA201"]).findings


class TestForkReachableState:
    FIXTURE = {
        "pkg/serve/service.py": (
            "import threading\n\n"
            "from pkg.serve.worker import spawn_worker\n\n\n"
            "class Service:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n\n"
            "    def start(self):\n"
            "        spawn_worker()\n"
        ),
        "pkg/serve/worker.py": (
            "import multiprocessing\n\n\n"
            "def spawn_worker():\n"
            "    proc = multiprocessing.Process(target=print, name='w',\n"
            "                                   daemon=True)\n"
            "    proc.start()\n"
            "    return proc\n"
        ),
    }

    def test_lock_reachable_across_modules(self):
        result = _lint(dict(self.FIXTURE))
        found = _by_rule(result, "RA202")
        assert len(found) == 1
        finding = found[0]
        assert finding.path == "pkg/serve/service.py"
        assert "self._lock" in finding.message
        # The cross-module evidence chain: creation -> caller -> fork site.
        notes = [e.note for e in finding.evidence]
        assert any("created here" in n for n in notes)
        assert any("calls spawn_worker()" in n for n in notes)
        assert any("fork site" in n for n in notes)
        assert any(e.path == "pkg/serve/worker.py" for e in finding.evidence)

    def test_suppression_lands_on_creation_line(self):
        sources = dict(self.FIXTURE)
        sources["pkg/serve/service.py"] = sources[
            "pkg/serve/service.py"
        ].replace(
            "self._lock = threading.Lock()",
            "self._lock = threading.Lock()  "
            "# repro: noqa[RA202] created pre-fork, never held across spawn",
        )
        result = _lint(sources)
        assert not _by_rule(result, "RA202")
        assert any(f.rule == "RA202" for f in result.suppressed)

    def test_real_tree_has_only_the_audited_suppression(self):
        result = _real(["RA202"])
        assert not result.findings
        assert [
            f.path for f in result.suppressed if f.rule == "RA202"
        ] == [str(SRC / "serve" / "service.py")]


class TestWorkerGlobalMutation:
    def test_entrypoint_mutation_flagged(self):
        result = _lint({
            "pkg/serve/w.py": (
                "import multiprocessing\n\n"
                "CACHE = {}\n\n\n"
                "def entry():\n"
                "    CACHE['k'] = 1\n\n\n"
                "def boot():\n"
                "    multiprocessing.Process(target=entry, name='w',\n"
                "                            daemon=True).start()\n"
            ),
        })
        found = _by_rule(result, "RA203")
        assert len(found) == 1 and found[0].line == 7
        assert "CACHE" in found[0].message

    def test_lock_guarded_mutation_exempt(self):
        result = _lint({
            "pkg/serve/w.py": (
                "import multiprocessing\n"
                "import threading\n\n"
                "CACHE = {}\n"
                "_lock = threading.Lock()\n\n\n"
                "def entry():\n"
                "    with _lock:\n"
                "        CACHE['k'] = 1\n\n\n"
                "def boot():\n"
                "    multiprocessing.Process(target=entry, name='w',\n"
                "                            daemon=True).start()\n"
            ),
        })
        assert not _by_rule(result, "RA203")

    def test_real_tree_clean(self):
        assert not _real(["RA203"]).findings


class TestBlockingGet:
    def test_untimed_get_in_loop_flagged(self):
        result = _lint({
            "pkg/serve/m.py": (
                "import queue\n\n"
                "q = queue.Queue()\n\n\n"
                "def drain():\n"
                "    while True:\n"
                "        item = q.get()\n"
                "        if item is None:\n"
                "            break\n"
            ),
        })
        found = _by_rule(result, "RA204")
        assert len(found) == 1 and found[0].line == 8

    def test_timeout_and_nonblocking_forms_ok(self):
        result = _lint({
            "pkg/serve/m.py": (
                "import queue\n\n"
                "q = queue.Queue()\n\n\n"
                "def drain():\n"
                "    while True:\n"
                "        a = q.get(timeout=1.0)\n"
                "        b = q.get(False)\n"
                "        c = q.get(block=False)\n"
                "        d = q.get(True, 0.5)\n"
                "        if a or b or c or d:\n"
                "            break\n"
            ),
        })
        assert not _by_rule(result, "RA204")

    def test_get_outside_loop_ok(self):
        result = _lint({
            "pkg/serve/m.py": (
                "import queue\n\n"
                "q = queue.Queue()\n\n\n"
                "def one():\n"
                "    return q.get()\n"
            ),
        })
        assert not _by_rule(result, "RA204")

    def test_real_tree_clean_after_timeout_fixes(self):
        # service._collect and worker_main both poll with timeout=1.0 now;
        # this pins the RA204 sweep that introduced those fixes.
        assert not _real(["RA204"]).findings


class TestAnonymousThread:
    def test_thread_missing_both_flagged(self):
        result = _lint({
            "pkg/serve/m.py": (
                "import threading\n\n\n"
                "def go():\n"
                "    threading.Thread(target=print).start()\n"
            ),
        })
        found = _by_rule(result, "RA205")
        assert len(found) == 1
        assert "daemon" in found[0].message and "name" in found[0].message

    def test_named_daemon_thread_ok(self):
        result = _lint({
            "pkg/serve/m.py": (
                "import threading\n\n\n"
                "def go():\n"
                "    threading.Thread(target=print, name='collector',\n"
                "                     daemon=True).start()\n"
            ),
        })
        assert not _by_rule(result, "RA205")

    def test_real_tree_clean(self):
        assert not _real(["RA205"]).findings


class TestDiscardedContextToken:
    def test_bare_set_flagged_across_modules(self):
        result = _lint({
            "pkg/obs/context.py": (
                "from contextvars import ContextVar\n\n"
                "REQUEST = ContextVar('request', default=None)\n"
            ),
            "pkg/obs/handler.py": (
                "from pkg.obs.context import REQUEST\n\n\n"
                "def handle(request_id):\n"
                "    REQUEST.set(request_id)\n"
            ),
        })
        found = _by_rule(result, "RA206")
        assert len(found) == 1 and found[0].path == "pkg/obs/handler.py"

    def test_token_kept_ok(self):
        result = _lint({
            "pkg/obs/context.py": (
                "from contextvars import ContextVar\n\n"
                "REQUEST = ContextVar('request', default=None)\n\n\n"
                "def set_context(value):\n"
                "    return REQUEST.set(value)\n"
            ),
        })
        assert not _by_rule(result, "RA206")

    def test_real_tree_clean(self):
        assert not _real(["RA206"]).findings
