"""Lint engine v2: selection, suppression edge cases, schema, baselines.

The per-rule behaviors live in ``test_analysis_lint.py`` (RA0xx) and the
per-pass suites; this file exercises the engine itself — pass/wildcard
selection, multi-rule and continuation-line noqa, the ``lint/2`` JSON
round-trip with evidence chains, and the baseline ratchet.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    PASS_NAMES,
    all_rules,
    baseline_payload,
    lint_sources,
    load_baseline,
    new_findings,
    resolve_passes,
    resolve_selection,
)
from repro.analysis.lint import BASELINE_SCHEMA, SCHEMA, LintResult

pytestmark = pytest.mark.analysis

#: One RA001 (print) and one RA204 (untimed get in loop) in a single file.
MIXED = (
    "import queue\n\n"
    "q = queue.Queue()\n\n\n"
    "def drain():\n"
    "    while True:\n"
    "        print(q.get())\n"
)

#: Wires the fixture module into its package so the architecture pass has
#: nothing to say (imported module, __all__-declared symbols) and only the
#: seeded RA001/RA204 remain.
COMPANION = 'from pkg.serve import m\n\n__all__ = ["drain", "more"]\n'


def _mixed(source=MIXED):
    return {"pkg/serve/m.py": source, "pkg/serve/__init__.py": COMPANION}


def _findings(sources, **kw):
    return lint_sources(sources, package="pkg", **kw).findings


class TestPassSelection:
    def test_default_runs_all_passes(self):
        result = lint_sources(_mixed(), package="pkg")
        assert result.passes_run == list(PASS_NAMES)
        assert {f.rule for f in result.findings} == {"RA001", "RA204"}

    def test_pass_filter_restricts_families(self):
        result = lint_sources(_mixed(), package="pkg", passes=["concurrency"])
        assert result.passes_run == ["concurrency"]
        assert {f.rule for f in result.findings} == {"RA204"}

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError, match="unknown pass"):
            resolve_passes(["arch", "nonsense"])

    def test_wildcard_select(self):
        # RA2XX selects the whole concurrency family, case-insensitive.
        findings = _findings(_mixed(), select=["ra2xx"])
        assert {f.rule for f in findings} == {"RA204"}

    def test_wildcard_and_explicit_rule_combine(self):
        findings = _findings(_mixed(), select=["RA001", "RA2XX"])
        assert {f.rule for f in findings} == {"RA001", "RA204"}

    def test_select_intersects_with_passes(self):
        findings = _findings(_mixed(), select=["RA001", "RA204"], passes=["file"])
        assert {f.rule for f in findings} == {"RA001"}

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            resolve_selection(["RA999"], None)

    def test_rule_catalogue_spans_all_passes(self):
        families = {rule.id[2] for rule in all_rules()}
        assert families == {"0", "1", "2", "3"}


class TestSuppressionEdgeCases:
    def test_multi_rule_noqa_suppresses_both(self):
        source = MIXED.replace(
            "        print(q.get())\n",
            "        print(q.get())  "
            "# repro: noqa[RA001,RA204] diagnostic drain loop\n",
        )
        result = lint_sources(_mixed(source), package="pkg")
        assert not result.findings
        assert {f.rule for f in result.suppressed} == {"RA001", "RA204"}

    def test_multi_rule_noqa_leaves_other_rules_alone(self):
        source = MIXED.replace(
            "        print(q.get())\n",
            "        print(q.get())  # repro: noqa[RA204] sentinel-driven\n",
        )
        result = lint_sources(_mixed(source), package="pkg")
        assert {f.rule for f in result.findings} == {"RA001"}
        assert {f.rule for f in result.suppressed} == {"RA204"}

    def test_noqa_binds_to_anchor_line_not_continuation(self):
        # The call spans three lines; the marker only works on the line
        # the finding anchors to (the call's lineno).
        on_continuation = (
            "import queue\n\n"
            "q = queue.Queue()\n\n\n"
            "def drain():\n"
            "    while True:\n"
            "        item = q.get(\n"
            "        )  # repro: noqa[RA204] wrong line\n"
        )
        result = lint_sources(
            {"pkg/serve/m.py": on_continuation}, package="pkg",
            select=["RA204"],
        )
        assert len(result.findings) == 1

        on_anchor = on_continuation.replace(
            "        item = q.get(\n",
            "        item = q.get(  # repro: noqa[RA204] sentinel-driven\n",
        )
        result = lint_sources(
            {"pkg/serve/m.py": on_anchor}, package="pkg", select=["RA204"]
        )
        assert not result.findings and len(result.suppressed) == 1

    def test_module_level_finding_suppressed_on_line_one(self):
        result = lint_sources({
            "pkg/core/orphan.py": (
                "# repro: noqa[RA103] staged for the next PR\n"
                "X = 1\n"
            ),
            "pkg/core/hub.py": "Y = 2\n",
        }, package="pkg", select=["RA103"])
        assert [f.path for f in result.findings] == ["pkg/core/hub.py"]
        assert [f.path for f in result.suppressed] == ["pkg/core/orphan.py"]


class TestSchemaRoundTrip:
    def test_v2_payload_round_trips_with_evidence(self):
        sources = {
            "pkg/serve/service.py": (
                "import threading\n\n"
                "from pkg.serve.worker import spawn\n\n\n"
                "class S:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n\n"
                "    def start(self):\n"
                "        spawn()\n"
            ),
            "pkg/serve/worker.py": (
                "import multiprocessing\n\n\n"
                "def spawn():\n"
                "    multiprocessing.Process(target=print, name='w',\n"
                "                            daemon=True).start()\n"
            ),
        }
        result = lint_sources(sources, package="pkg", select=["RA202"])
        assert len(result.findings) == 1
        payload = json.loads(result.to_json())
        assert payload["schema"] == SCHEMA
        assert payload["passes"] == list(PASS_NAMES)
        (finding,) = payload["findings"]
        assert finding["pass"] == "concurrency"
        assert len(finding["evidence"]) == 3
        assert finding["evidence"][-1]["path"] == "pkg/serve/worker.py"

        rebuilt = LintResult.from_dict(payload)
        assert rebuilt.fingerprints() == result.fingerprints()
        assert rebuilt.findings[0].evidence == result.findings[0].evidence
        assert rebuilt.passes_run == result.passes_run

    def test_v1_payload_still_loads(self):
        v1 = {
            "schema": "repro.analysis.lint/1",
            "files_checked": 1,
            "findings": [{
                "path": "a.py", "line": 3, "col": 0,
                "rule": "RA001", "message": "print() in library code",
            }],
            "suppressed": [],
            "errors": [],
        }
        rebuilt = LintResult.from_dict(v1)
        assert rebuilt.findings[0].rule == "RA001"
        assert rebuilt.findings[0].evidence == ()
        assert rebuilt.passes_run == []


class TestBaselines:
    def test_ratchet_tolerates_old_flags_new(self, tmp_path):
        old = lint_sources(_mixed(), package="pkg")
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(json.dumps(baseline_payload(old)))

        baseline = load_baseline(baseline_file)
        assert not new_findings(old, baseline)

        # A second untimed queue: its message (and so its fingerprint)
        # differs from the baselined one. A textually identical finding
        # elsewhere in the same file is ratchet-tolerated by design —
        # fingerprints are line-insensitive.
        grown = MIXED + (
            "\n\nr = queue.Queue()\n\n\n"
            "def more():\n"
            "    while True:\n"
            "        if r.get() is None:\n"
            "            break\n"
        )
        now = lint_sources(_mixed(grown), package="pkg")
        fresh = new_findings(now, baseline)
        assert [f.rule for f in fresh] == ["RA204"]
        assert all("r.get()" in f.message for f in fresh)

    def test_fingerprints_survive_line_moves(self):
        shifted = "# a leading comment\n" + MIXED
        a = lint_sources(_mixed(), package="pkg")
        b = lint_sources(_mixed(shifted), package="pkg")
        assert a.fingerprints() == b.fingerprints()

    def test_load_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "not_baseline.json"
        bad.write_text(json.dumps({"schema": "other/1", "fingerprints": []}))
        with pytest.raises(ValueError, match="not a lint baseline"):
            load_baseline(bad)

    def test_baseline_schema_is_versioned(self):
        payload = baseline_payload(
            lint_sources({"pkg/m.py": "X = 1\n"}, package="pkg")
        )
        assert payload["schema"] == BASELINE_SCHEMA
