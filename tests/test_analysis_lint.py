"""Unit tests for the repro.analysis lint engine and rule catalogue."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import (
    ALL_RULES,
    RULES_BY_ID,
    lint_paths,
    lint_source,
    noqa_rules_for_line,
    render_findings,
    render_summary,
    resolve_rules,
    summarize,
)

pytestmark = pytest.mark.analysis


def findings_for(source: str, path: str = "src/repro/somemodule.py", rules=None):
    found, _ = lint_source(textwrap.dedent(source), path, rules)
    return found


def rule_ids(source: str, path: str = "src/repro/somemodule.py"):
    return [f.rule for f in findings_for(source, path)]


# ----------------------------------------------------------------------
# RA001: bare print
# ----------------------------------------------------------------------
class TestBarePrint:
    def test_flags_print_in_library_code(self):
        assert rule_ids("print('hello')\n") == ["RA001"]

    def test_cli_and_main_are_exempt(self):
        for path in ("src/repro/cli.py", "src/repro/__main__.py"):
            assert rule_ids("print('hello')\n", path) == []

    def test_logger_call_not_flagged(self):
        src = """
        from repro.obs import get_logger
        get_logger("ns").info("event", value=1)
        """
        assert rule_ids(src) == []

    def test_shadowed_print_attribute_not_flagged(self):
        # obj.print(...) is not the builtin
        assert rule_ids("obj.print('x')\n") == []


# ----------------------------------------------------------------------
# RA002: unseeded randomness
# ----------------------------------------------------------------------
class TestUnseededRandom:
    def test_unseeded_default_rng(self):
        src = """
        import numpy as np
        rng = np.random.default_rng()
        """
        assert rule_ids(src) == ["RA002"]

    def test_seeded_default_rng_ok(self):
        src = """
        import numpy as np
        rng = np.random.default_rng(7)
        other = np.random.default_rng(seed=0)
        """
        assert rule_ids(src) == []

    def test_legacy_module_level_call(self):
        src = """
        import numpy as np
        x = np.random.randn(3)
        np.random.seed(0)
        """
        assert rule_ids(src) == ["RA002", "RA002"]

    def test_generator_method_call_ok(self):
        src = """
        import numpy as np
        rng = np.random.default_rng(1)
        x = rng.normal(size=3)
        """
        assert rule_ids(src) == []

    def test_respects_numpy_alias(self):
        src = """
        import numpy
        x = numpy.random.rand(2)
        """
        assert rule_ids(src) == ["RA002"]

    def test_unrelated_random_attribute_ok(self):
        src = """
        import mylib
        x = mylib.random.rand(2)
        """
        assert rule_ids(src) == []


# ----------------------------------------------------------------------
# RA003: loop-variable late binding
# ----------------------------------------------------------------------
class TestLoopClosure:
    def test_flags_late_bound_loop_variable(self):
        src = """
        callbacks = []
        for op in ops:
            def backward(grad):
                return grad * op
            callbacks.append(backward)
        """
        found = findings_for(src)
        assert [f.rule for f in found] == ["RA003"]
        assert "'op'" in found[0].message

    def test_default_arg_binding_ok(self):
        src = """
        callbacks = []
        for op in ops:
            def backward(grad, _op=op):
                return grad * _op
            callbacks.append(backward)
        """
        assert rule_ids(src) == []

    def test_lambda_in_loop(self):
        src = """
        fns = [  ]
        for i in range(3):
            fns.append(lambda: i)
        """
        assert rule_ids(src) == ["RA003"]

    def test_locally_rebound_name_ok(self):
        src = """
        for i in range(3):
            def fn():
                i = 0
                return i
        """
        assert rule_ids(src) == []


# ----------------------------------------------------------------------
# RA004: in-place .data/.grad mutation
# ----------------------------------------------------------------------
class TestTapeMutation:
    def test_augmented_assignment(self):
        assert rule_ids("t.data += 1.0\n") == ["RA004"]

    def test_slice_assignment(self):
        assert rule_ids("t.data[0] = 0.0\n") == ["RA004"]

    def test_ufunc_out_kwarg(self):
        src = """
        import numpy as np
        np.add(a, b, out=t.grad)
        """
        assert rule_ids(src) == ["RA004"]

    def test_ufunc_at(self):
        src = """
        import numpy as np
        np.add.at(t.data, idx, delta)
        """
        assert rule_ids(src) == ["RA004"]

    def test_optimizer_module_exempt(self):
        assert rule_ids("p.data -= lr * p.grad\n", "src/repro/autograd/optim.py") == []

    def test_rebinding_data_attribute_ok(self):
        # Rebinding (not mutating) the attribute is the sanctioned pattern.
        assert rule_ids("t.data = new_array\n") == []


# ----------------------------------------------------------------------
# RA005: swallowed exceptions
# ----------------------------------------------------------------------
class TestSwallowedException:
    def test_bare_except(self):
        src = """
        try:
            risky()
        except:
            handle()
        """
        assert rule_ids(src) == ["RA005"]

    def test_swallowing_broad_except(self):
        src = """
        try:
            risky()
        except Exception:
            pass
        """
        assert rule_ids(src) == ["RA005"]

    def test_broad_except_with_handling_ok(self):
        src = """
        try:
            risky()
        except Exception as exc:
            failures.append(repr(exc))
        """
        assert rule_ids(src) == []

    def test_narrow_except_pass_ok(self):
        src = """
        try:
            risky()
        except KeyError:
            pass
        """
        assert rule_ids(src) == []


# ----------------------------------------------------------------------
# Suppression (# repro: noqa)
# ----------------------------------------------------------------------
class TestNoqa:
    def test_rule_specific_suppression(self):
        found, suppressed = lint_source(
            "print('x')  # repro: noqa[RA001] terminal sink\n",
            "src/repro/mod.py",
        )
        assert found == []
        assert [f.rule for f in suppressed] == ["RA001"]

    def test_blanket_suppression(self):
        found, suppressed = lint_source(
            "print('x')  # repro: noqa\n", "src/repro/mod.py"
        )
        assert found == []
        assert len(suppressed) == 1

    def test_wrong_rule_id_does_not_suppress(self):
        found, suppressed = lint_source(
            "print('x')  # repro: noqa[RA002]\n", "src/repro/mod.py"
        )
        assert [f.rule for f in found] == ["RA001"]
        assert suppressed == []

    def test_noqa_rules_for_line(self):
        assert noqa_rules_for_line("x = 1") is None
        assert noqa_rules_for_line("x = 1  # repro: noqa") == set()
        assert noqa_rules_for_line("x  # repro: noqa[RA001, RA004]") == {
            "RA001",
            "RA004",
        }


# ----------------------------------------------------------------------
# Rule selection + engine surface
# ----------------------------------------------------------------------
class TestEngine:
    def test_resolve_rules_all(self):
        assert resolve_rules(None) == list(ALL_RULES)

    def test_resolve_rules_subset(self):
        rules = resolve_rules(["RA001", "RA004"])
        assert [r.id for r in rules] == ["RA001", "RA004"]

    def test_resolve_rules_unknown(self):
        with pytest.raises(ValueError, match="unknown rule"):
            resolve_rules(["RA999"])

    def test_catalogue_is_complete(self):
        assert sorted(RULES_BY_ID) == ["RA001", "RA002", "RA003", "RA004", "RA005"]
        for rule in ALL_RULES:
            assert rule.title and rule.hint

    def test_select_limits_findings(self):
        src = """
        import numpy as np
        print('x')
        rng = np.random.default_rng()
        """
        found = findings_for(src, rules=resolve_rules(["RA002"]))
        assert [f.rule for f in found] == ["RA002"]

    def test_lint_paths_and_json_stability(self, tmp_path):
        bad = tmp_path / "pkg" / "mod.py"
        bad.parent.mkdir()
        bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        result = lint_paths([tmp_path], passes=["file"])
        assert not result.clean
        payload = json.loads(result.to_json())
        assert payload["schema"] == "repro.analysis.lint/2"
        assert payload["counts"] == {"RA002": 1}
        # Stable across runs.
        assert result.to_json() == lint_paths([tmp_path], passes=["file"]).to_json()

    def test_lint_paths_missing_target(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            lint_paths([tmp_path / "nope.py"])

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        result = lint_paths([tmp_path])
        assert not result.clean
        assert result.findings == []
        assert len(result.errors) == 1
        assert "syntax error" in result.errors[0][1]

    def test_render_findings_hints_once_per_rule(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text("print('a')\nprint('b')\n")
        text = render_findings(lint_paths([tmp_path], passes=["file"]), fix_hints=True)
        assert text.count("hint[RA001]") == 1
        assert "2 findings" in text

    def test_summary_roll_up(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(
            "import numpy as np\n"
            "rng = np.random.default_rng()\n"
            "print('x')  # repro: noqa[RA001] allowed here\n"
        )
        result = lint_paths([tmp_path], passes=["file"])
        summary = summarize(result)
        assert summary["schema"] == "repro.analysis.report/2"
        assert summary["by_rule"]["RA002"]["findings"] == 1
        assert summary["by_rule"]["RA001"]["suppressed"] == 1
        rendered = render_summary(result)
        assert "RA002" in rendered and "1 open findings" in rendered
