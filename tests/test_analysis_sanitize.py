"""Runtime tape sanitizer tests: injected faults must be caught and named,
and a clean sanitized run must be bit-identical to an unsanitized one."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    ContractChecker,
    ContractViolation,
    NumericalFaultError,
    Sanitizer,
    TapeCorruptionError,
    audit_parameters,
    named_modules,
)
from repro.autograd.nn import Linear
from repro.autograd.rnn import GRUCell
from repro.autograd.tensor import Tensor
from repro.core.config import FakeDetectorConfig
from repro.core.gdu import GDU
from repro.core.trainer import FakeDetector

pytestmark = [
    pytest.mark.analysis,
    # The injected faults legitimately trip numpy's warnings on the way to
    # the sanitizer's exception; keep the test output quiet.
    pytest.mark.filterwarnings("ignore::RuntimeWarning"),
]


# ----------------------------------------------------------------------
# NaN/Inf guard
# ----------------------------------------------------------------------
class TestNumericalGuard:
    def test_nan_forward_caught_with_op_name(self):
        x = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        with pytest.raises(NumericalFaultError) as excinfo, Sanitizer():
            x.log()
        assert excinfo.value.phase == "forward"
        assert excinfo.value.op == "log"
        assert excinfo.value.shape == (2,)
        assert "1/2 elements" in str(excinfo.value)

    def test_inf_forward_caught(self):
        x = Tensor(np.array([1.0, 0.0]), requires_grad=True)
        one = Tensor(np.array([1.0, 1.0]))
        with pytest.raises(NumericalFaultError) as excinfo, Sanitizer():
            one / x
        assert excinfo.value.phase == "forward"
        assert excinfo.value.op == "div"

    def test_inf_backward_caught_with_op_name(self):
        x = Tensor(np.array([0.0, 4.0]), requires_grad=True)
        with Sanitizer():
            y = x.sqrt()  # forward is finite: [0, 2]
            with pytest.raises(NumericalFaultError) as excinfo:
                y.sum().backward()  # d sqrt/dx at 0 is inf
        assert excinfo.value.phase == "backward"
        assert excinfo.value.op == "sqrt"
        assert "gradient for input" in str(excinfo.value)

    def test_clean_graph_passes(self):
        x = Tensor(np.linspace(0.1, 1.0, 8).reshape(2, 4), requires_grad=True)
        with Sanitizer() as sanitizer:
            loss = (x.log().exp() * x).sum()
            loss.backward()
        assert x.grad is not None
        assert sanitizer.stats.forward_ops > 0
        assert sanitizer.stats.backward_ops > 0

    def test_nan_check_can_be_disabled(self):
        x = Tensor(np.array([-1.0]), requires_grad=True)
        with Sanitizer(check_nan=False):
            y = x.log()  # no raise
        assert np.isnan(y.data).all()


# ----------------------------------------------------------------------
# In-place mutation detector
# ----------------------------------------------------------------------
class TestMutationDetector:
    def test_mutated_input_between_forward_and_backward(self):
        x = Tensor(np.ones(4), requires_grad=True)
        # Verification happens at the step boundary (context exit / flush),
        # and the report blames the op that first captured the array.
        with pytest.raises(TapeCorruptionError) as excinfo:
            with Sanitizer():
                y = x * 2.0
                x.data += 1.0  # the classic tape-corruption bug
                y.sum().backward()
        assert excinfo.value.op == "mul"
        assert excinfo.value.shape == (4,)
        assert "mutated in place" in str(excinfo.value)

    def test_mutated_output_caught(self):
        x = Tensor(np.ones(4), requires_grad=True)
        with pytest.raises(TapeCorruptionError) as excinfo:
            with Sanitizer():
                y = x.tanh()
                y.data[0] = 99.0
                y.sum().backward()
        assert excinfo.value.op == "tanh"

    def test_flush_verifies_and_raises(self):
        x = Tensor(np.ones(4), requires_grad=True)
        sanitizer = Sanitizer().start()
        try:
            _ = x * 2.0
            x.data += 1.0
            with pytest.raises(TapeCorruptionError) as excinfo:
                sanitizer.flush()
            assert excinfo.value.op == "mul"
            sanitizer.flush()  # cache was dropped despite the raise
        finally:
            sanitizer.stop()

    def test_untouched_graph_verifies_everything(self):
        x = Tensor(np.ones((3, 3)), requires_grad=True)
        with Sanitizer() as sanitizer:
            (x @ x).sum().backward()
        # One verification per distinct array; registration counts captures.
        assert 0 < sanitizer.stats.arrays_verified <= sanitizer.stats.arrays_registered

    def test_flush_drops_pending_entries(self):
        x = Tensor(np.ones(4), requires_grad=True)
        sanitizer = Sanitizer().start()
        try:
            y = x * 2.0
            sanitizer.flush()
            x.data += 1.0  # after the flush boundary: treated as a new step
            y.sum().backward()
            sanitizer.flush()  # no raise: x.data was never re-captured
        finally:
            sanitizer.stop()

    def test_fault_inside_context_not_masked_by_exit_verify(self):
        x = Tensor(np.ones(4), requires_grad=True)
        bad = Tensor(np.array([-1.0]), requires_grad=True)
        with pytest.raises(NumericalFaultError):
            with Sanitizer():
                _ = x * 2.0
                x.data += 1.0  # a mutation is pending when the fault fires:
                bad.log()  # the original fault must win over exit-verify

    def test_mutation_check_can_be_disabled(self):
        x = Tensor(np.ones(4), requires_grad=True)
        with Sanitizer(check_mutation=False):
            y = x * 2.0
            x.data += 1.0
            y.sum().backward()  # no raise (grads are wrong; caller opted out)

    def test_needs_at_least_one_check(self):
        with pytest.raises(ValueError):
            Sanitizer(check_nan=False, check_mutation=False)


# ----------------------------------------------------------------------
# Hook lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_hook_installed_and_restored(self):
        from repro.autograd import tensor as tensor_mod

        assert tensor_mod._CHECK_HOOK is None
        with Sanitizer():
            assert tensor_mod._CHECK_HOOK is not None
        assert tensor_mod._CHECK_HOOK is None

    def test_nested_sanitizers_restore_previous(self):
        outer = Sanitizer().start()
        inner = Sanitizer().start()
        from repro.autograd import tensor as tensor_mod

        assert tensor_mod._CHECK_HOOK == inner._check
        inner.stop()
        assert tensor_mod._CHECK_HOOK == outer._check
        outer.stop()
        assert tensor_mod._CHECK_HOOK is None

    def test_double_start_rejected(self):
        sanitizer = Sanitizer().start()
        try:
            with pytest.raises(RuntimeError):
                sanitizer.start()
        finally:
            sanitizer.stop()

    def test_no_overhead_structures_without_hook(self):
        # Without a check hook, backward closures must not capture the node.
        x = Tensor(np.ones(2), requires_grad=True)
        y = x * 2.0
        y.sum().backward()
        assert x.grad is not None


# ----------------------------------------------------------------------
# Dead-parameter audit
# ----------------------------------------------------------------------
class TestDeadParameters:
    def _gdu_with_dead_selection_gates(self):
        rng = np.random.default_rng(0)
        gdu = GDU(input_dim=6, hidden_dim=4, rng=rng)
        # Simulate the mis-wired-gate bug: the parameters exist but forward
        # bypasses them.
        gdu.use_selection_gates = False
        x = Tensor(rng.normal(size=(5, 6)), requires_grad=True)
        z = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        t = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        gdu(x, z, t).sum().backward()
        return gdu

    def test_disconnected_gdu_gates_reported_by_name(self):
        gdu = self._gdu_with_dead_selection_gates()
        dead = audit_parameters(gdu.named_parameters())
        missing = {d.name for d in dead if d.reason == "missing"}
        assert missing == {"w_g", "b_g", "w_r", "b_r"}

    def test_fully_wired_gdu_is_clean(self):
        rng = np.random.default_rng(1)
        gdu = GDU(input_dim=6, hidden_dim=4, rng=rng)
        x = Tensor(rng.normal(size=(5, 6)), requires_grad=True)
        z = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        t = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        gdu(x, z, t).sum().backward()
        dead = audit_parameters(gdu.named_parameters())
        assert [d for d in dead if d.reason == "missing"] == []

    def test_zero_gradient_reason(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        x = Tensor(np.zeros((4, 3)))
        layer(x).sum().backward()
        dead = {d.name: d.reason for d in audit_parameters(layer.named_parameters())}
        assert dead.get("weight") == "zero"  # zero inputs -> zero weight grad
        assert "bias" not in dead  # bias grad is the ones vector

    def test_to_dict_round_trip(self):
        gdu = self._gdu_with_dead_selection_gates()
        payload = [d.to_dict() for d in audit_parameters(gdu.named_parameters())]
        assert {"name", "shape", "reason"} <= set(payload[0])


# ----------------------------------------------------------------------
# Shape/dtype contracts
# ----------------------------------------------------------------------
class TestContracts:
    def test_linear_wrong_width_named_by_path(self):
        layer = Linear(4, 2, rng=np.random.default_rng(0))
        with ContractChecker(layer):
            with pytest.raises(ContractViolation, match="expected input width 4"):
                layer(Tensor(np.ones((3, 5))))

    def test_gdu_wrong_state_width(self):
        gdu = GDU(input_dim=6, hidden_dim=4, rng=np.random.default_rng(0))
        x = Tensor(np.ones((2, 6)))
        bad_z = Tensor(np.ones((2, 3)))
        t = Tensor(np.ones((2, 4)))
        with ContractChecker(gdu):
            with pytest.raises(ContractViolation, match="expected z width 4"):
                gdu(x, bad_z, t)

    def test_gru_cell_state_mismatch(self):
        cell = GRUCell(3, 5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((2, 3)))
        bad_h = Tensor(np.ones((2, 4)))
        with ContractChecker(cell):
            with pytest.raises(ContractViolation, match="expected h width 5"):
                cell(x, bad_h)

    def test_valid_calls_pass_and_forward_is_restored(self):
        layer = Linear(4, 2, rng=np.random.default_rng(0))
        x = Tensor(np.ones((3, 4)))
        with ContractChecker(layer):
            out = layer(x)
        assert out.shape == (3, 2)
        assert "forward" not in layer.__dict__  # original method restored
        layer(x)  # still works after exit

    def test_named_modules_paths(self):
        gdu = GDU(input_dim=2, hidden_dim=2, rng=np.random.default_rng(0))
        paths = [path for path, _ in named_modules(gdu)]
        assert paths[0] == "<root>"


# ----------------------------------------------------------------------
# End-to-end: sanitized training is bit-identical
# ----------------------------------------------------------------------
class TestTrainerIntegration:
    def test_sanitized_fit_losses_bit_identical(self, tiny_dataset, tiny_split):
        config = FakeDetectorConfig(epochs=2, log_every=0)
        plain = FakeDetector(config).fit(tiny_dataset, tiny_split)
        sanitized = FakeDetector(config).fit(tiny_dataset, tiny_split, sanitize=True)
        assert sanitized.record.total == plain.record.total
        assert sanitized.record.article == plain.record.article
        assert sanitized.record.grad_norms == plain.record.grad_norms

    def test_sanitizer_uninstalled_after_fit(self, tiny_dataset, tiny_split):
        from repro.autograd import tensor as tensor_mod

        config = FakeDetectorConfig(epochs=1, log_every=0)
        FakeDetector(config).fit(tiny_dataset, tiny_split, sanitize=True)
        assert tensor_mod._CHECK_HOOK is None

    def test_sanitizer_uninstalled_after_training_fault(
        self, tiny_dataset, tiny_split, monkeypatch
    ):
        from repro.autograd import tensor as tensor_mod

        def boom(*args, **kwargs):
            raise RuntimeError("injected training fault")

        monkeypatch.setattr(FakeDetector, "_full_batch_step", boom)
        config = FakeDetectorConfig(epochs=1, log_every=0)
        with pytest.raises(RuntimeError, match="injected"):
            FakeDetector(config).fit(tiny_dataset, tiny_split, sanitize=True)
        assert tensor_mod._CHECK_HOOK is None
