"""Tensor-shape pass (RA3xx): symbolic dims, abstract interpreter, registry.

Covers the :class:`~repro.analysis.shapes.Dim` algebra directly, seeded
provable mismatches in fixture modules, the zero-false-positive contract
on the real model classes, and the transfer-function registry gate: every
op instrumented in the runtime must be modeled here, enumerated
explicitly so a new op without a transfer fails this suite.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_sources
from repro.analysis.shapes import (
    TRANSFERS,
    AT,
    Dim,
    ShapeError,
)

pytestmark = pytest.mark.analysis

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def _lint(sources, select=None):
    return lint_sources(
        sources, select=select, passes=["shapes"], package="pkg"
    )


def _by_rule(result, rule):
    return [f for f in result.findings if f.rule == rule]


class TestDimAlgebra:
    def test_linear_arithmetic(self):
        h = Dim.atom("H")
        assert str(h + Dim.of(1)) == "H+1"
        assert (h + h) == h.scaled(2)
        assert (h - h).is_const and (h - h).min_value() == 0

    def test_provably_ne_requires_nonzero_gap(self):
        h, e = Dim.atom("H"), Dim.atom("E")
        assert (h + Dim.of(1)).provably_ne(h)
        assert h.scaled(3).provably_ne(h.scaled(4))  # 3H vs 4H: gap >= 1
        assert not h.provably_ne(e)  # distinct atoms may still be equal
        assert not h.provably_ne(h)

    def test_could_be_one_guards_broadcast(self):
        h = Dim.atom("H")
        assert h.could_be_one()  # atoms are only known >= 1
        assert not (h + Dim.of(1)).could_be_one()
        assert Dim.of(1).is_one and not Dim.of(2).could_be_one()

    def test_matmul_transfer_checks_inner_dim(self):
        b, i = Dim.atom("B"), Dim.atom("I")
        x = AT(shape=(b, i), dtype="float64")
        w_bad = AT(shape=(i + Dim.of(1), b), dtype="float64")
        with pytest.raises(ShapeError) as err:
            TRANSFERS["matmul"](x, w_bad)
        assert err.value.rule == "RA301"
        w_ok = AT(shape=(i, b), dtype="float64")
        out = TRANSFERS["matmul"](x, w_ok)
        assert out.shape == (b, b)


class TestShapeMismatchRule:
    def test_provable_inner_dim_mismatch_flagged(self):
        # Linear's forward spec binds x to (batch, in_features); a weight
        # of (in_features + 1, out_features) can never matmul with it.
        result = _lint({
            "pkg/core/m.py": (
                "class Linear:\n"
                "    def __init__(self, in_features, out_features):\n"
                "        self.weight = zeros((in_features + 1, out_features))\n\n"
                "    def forward(self, x):\n"
                "        return x @ self.weight\n"
            ),
        })
        found = _by_rule(result, "RA301")
        assert len(found) == 1
        assert found[0].line == 6
        assert "in_features" in found[0].message
        assert found[0].evidence  # carries the abstract-execution anchor

    def test_consistent_forward_is_silent(self):
        result = _lint({
            "pkg/core/m.py": (
                "class Linear:\n"
                "    def __init__(self, in_features, out_features):\n"
                "        self.weight = zeros((in_features, out_features))\n"
                "        self.bias = zeros((out_features,))\n\n"
                "    def forward(self, x):\n"
                "        return x @ self.weight + self.bias\n"
            ),
        })
        assert not result.findings

    def test_unknown_shapes_stay_silent(self):
        # No forward spec for this class name: inputs are unknown, and the
        # interpreter must not guess.
        result = _lint({
            "pkg/core/m.py": (
                "class Mystery:\n"
                "    def __init__(self, width):\n"
                "        self.weight = zeros((width, width))\n\n"
                "    def forward(self, x):\n"
                "        return x @ self.weight\n"
            ),
        })
        assert not result.findings

    def test_real_model_classes_are_clean(self):
        from repro.analysis import lint_paths

        result = lint_paths([SRC], select=["RA301"], passes=["shapes"])
        assert not result.findings


class TestDtypeMismatchRule:
    def test_float_indices_into_embedding_flagged(self):
        result = _lint({
            "pkg/core/m.py": (
                "class Linear:\n"
                "    def __init__(self, in_features, out_features):\n"
                "        self.table = zeros((in_features, out_features))\n\n"
                "    def forward(self, x):\n"
                "        return embedding_gather(self.table, x)\n"
            ),
        })
        found = _by_rule(result, "RA302")
        assert len(found) == 1 and "integer" in found[0].message

    def test_real_tree_clean(self):
        from repro.analysis import lint_paths

        result = lint_paths([SRC], select=["RA302"], passes=["shapes"])
        assert not result.findings


def _all_instrumented_ops():
    # The registry fills as op-defining modules import; load every module
    # that calls instrument_op so the enumeration is complete.
    import repro.autograd.kernels  # noqa: F401
    import repro.autograd.sparse  # noqa: F401
    import repro.autograd.tensor as tensor_mod

    return list(tensor_mod.INSTRUMENTED_OPS)


class TestTransferRegistry:
    def test_every_instrumented_op_has_a_transfer(self):
        missing = [op for op in _all_instrumented_ops() if op not in TRANSFERS]
        assert not missing, (
            f"instrumented ops without a shapes transfer: {missing}; add "
            "them to repro.analysis.shapes.TRANSFERS"
        )

    def test_registry_is_not_trivially_small(self):
        assert len(_all_instrumented_ops()) >= 31

    def test_missing_transfer_becomes_finding(self, monkeypatch):
        import repro.analysis.shapes as shapes_mod

        trimmed = dict(TRANSFERS)
        trimmed.pop("matmul")
        monkeypatch.setattr(shapes_mod, "TRANSFERS", trimmed)
        result = _lint({"pkg/core/m.py": "X = 1\n"}, select=["RA303"])
        found = _by_rule(result, "RA303")
        assert len(found) == 1 and "'matmul'" in found[0].message

    def test_real_tree_has_no_gap(self):
        from repro.analysis import lint_paths

        result = lint_paths([SRC], select=["RA303"], passes=["shapes"])
        assert not result.findings
