"""Tests for 1-D convolution and the CNN sentence encoder."""

import numpy as np
import pytest

from repro.autograd import CNNEncoder, Conv1d, Tensor, conv1d, max_pool_over_time

from tests.helpers import finite_difference_check


class TestConv1d:
    def test_output_shape(self, rng):
        x = Tensor(rng.standard_normal((2, 10, 3)))
        w = Tensor(rng.standard_normal((4, 3, 5)))
        assert conv1d(x, w).shape == (2, 7, 5)

    def test_known_values(self):
        # Kernel of ones over a single channel = moving window sums.
        x = Tensor(np.arange(5, dtype=float).reshape(1, 5, 1))
        w = Tensor(np.ones((2, 1, 1)))
        out = conv1d(x, w)
        np.testing.assert_allclose(out.data[0, :, 0], [1, 3, 5, 7])

    def test_bias_added(self, rng):
        x = Tensor(rng.standard_normal((1, 4, 2)))
        w = Tensor(rng.standard_normal((2, 2, 3)))
        b = Tensor(np.full(3, 10.0))
        with_bias = conv1d(x, w, b)
        without = conv1d(x, w)
        np.testing.assert_allclose(with_bias.data, without.data + 10.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            conv1d(Tensor(rng.standard_normal((4, 2))), Tensor(rng.standard_normal((2, 2, 3))))
        with pytest.raises(ValueError):
            conv1d(
                Tensor(rng.standard_normal((1, 4, 2))),
                Tensor(rng.standard_normal((2, 3, 3))),  # wrong in_channels
            )
        with pytest.raises(ValueError):
            conv1d(
                Tensor(rng.standard_normal((1, 2, 2))),
                Tensor(rng.standard_normal((3, 2, 3))),  # kernel longer than seq
            )

    def test_gradcheck(self, rng):
        x = Tensor(rng.standard_normal((2, 6, 2)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 3)), requires_grad=True)
        finite_difference_check(lambda x, w: (conv1d(x, w) ** 2).sum(), [x, w], tol=1e-4)

    def test_layer_parameters(self, rng):
        layer = Conv1d(3, 5, 4, rng=rng)
        assert layer.weight.shape == (4, 3, 5)
        assert layer.bias.shape == (5,)
        assert "Conv1d" in repr(layer)

    def test_layer_validation(self, rng):
        with pytest.raises(ValueError):
            Conv1d(0, 5, 3, rng=rng)


class TestMaxPool:
    def test_pools_over_time(self, rng):
        x = Tensor(rng.standard_normal((2, 7, 4)))
        out = max_pool_over_time(x)
        assert out.shape == (2, 4)
        np.testing.assert_allclose(out.data, x.data.max(axis=1))

    def test_rejects_2d(self, rng):
        with pytest.raises(ValueError):
            max_pool_over_time(Tensor(rng.standard_normal((2, 7))))

    def test_gradient_flows_to_max_positions(self):
        x = Tensor(np.array([[[1.0], [5.0], [3.0]]]), requires_grad=True)
        max_pool_over_time(x).sum().backward()
        np.testing.assert_allclose(x.grad[0, :, 0], [0, 1, 0])


class TestCNNEncoder:
    def test_output_shape_and_range(self, rng):
        enc = CNNEncoder(vocab_size=40, embed_dim=6, num_filters=5, output_size=7, rng=rng)
        out = enc(rng.integers(1, 40, size=(3, 12)))
        assert out.shape == (3, 7)
        assert np.all((out.data >= 0) & (out.data <= 1))

    def test_short_sequence_padded_to_kernel(self, rng):
        enc = CNNEncoder(
            vocab_size=40, embed_dim=6, num_filters=5, output_size=7,
            kernel_sizes=(2, 3, 5), rng=rng,
        )
        out = enc(rng.integers(1, 40, size=(2, 3)))  # shorter than widest kernel
        assert out.shape == (2, 7)

    def test_1d_input_promoted(self, rng):
        enc = CNNEncoder(vocab_size=40, embed_dim=6, num_filters=5, output_size=7, rng=rng)
        assert enc(rng.integers(1, 40, size=8)).shape == (1, 7)

    def test_empty_kernel_sizes_rejected(self, rng):
        with pytest.raises(ValueError):
            CNNEncoder(40, 6, 5, 7, kernel_sizes=(), rng=rng)

    def test_position_invariance_of_bigram_activation(self, rng):
        """A bigram's window activation is identical wherever it occurs, and
        the pooled value is at least that activation (max-pool property)."""
        from repro.autograd import Tensor, conv1d, max_pool_over_time

        embed = Tensor(rng.standard_normal((30, 6)))
        kernel = Tensor(rng.standard_normal((2, 6, 8)))

        def pooled_and_window(seq, window_start):
            x = embed.data[np.asarray(seq)][None, :, :]
            activations = conv1d(Tensor(x), kernel).relu()
            pooled = max_pool_over_time(activations)
            return pooled.data[0], activations.data[0, window_start]

        early_pool, early_win = pooled_and_window([5, 6, 1, 1, 1, 1], 0)
        late_pool, late_win = pooled_and_window([1, 1, 1, 1, 5, 6], 4)
        np.testing.assert_allclose(early_win, late_win)  # same bigram, same act
        assert (early_pool >= early_win - 1e-12).all()
        assert (late_pool >= late_win - 1e-12).all()

    def test_gradients_flow(self, rng):
        enc = CNNEncoder(vocab_size=30, embed_dim=5, num_filters=4, output_size=3, rng=rng)
        out = enc(rng.integers(1, 30, size=(2, 8)))
        (out ** 2).sum().backward()
        for name, p in enc.named_parameters():
            assert p.grad is not None, name

    def test_learns_token_detection(self, rng):
        from repro.autograd import Linear
        from repro.autograd import functional as F
        from repro.autograd import optim

        enc = CNNEncoder(vocab_size=15, embed_dim=6, num_filters=8, output_size=6,
                         kernel_sizes=(2, 3), rng=rng)
        head = Linear(6, 2, rng=rng)
        seqs = rng.integers(1, 15, size=(60, 8))
        labels = (seqs == 4).any(axis=1).astype(int)
        params = list(enc.parameters()) + list(head.parameters())
        opt = optim.Adam(params, lr=0.02)
        for _ in range(80):
            loss = F.cross_entropy(head(enc(seqs)), labels)
            opt.zero_grad()
            loss.backward()
            opt.step()
        acc = (head(enc(seqs)).data.argmax(axis=1) == labels).mean()
        assert acc > 0.9


class TestEncoderVariants:
    def test_bigru_encoder_path(self, rng):
        from repro.autograd import GRUEncoder

        enc = GRUEncoder(vocab_size=30, embed_dim=5, hidden_size=6, output_size=4,
                         rng=rng, cell="bigru")
        out = enc(rng.integers(1, 30, size=(3, 7)))
        assert out.shape == (3, 4)

    def test_bigru_padding_invariance(self, rng):
        from repro.autograd import GRUEncoder

        enc = GRUEncoder(vocab_size=30, embed_dim=5, hidden_size=6, output_size=4,
                         rng=rng, cell="bigru")
        a = enc(np.array([[3, 7, 5, 0, 0]]))
        b = enc(np.array([[3, 7, 5, 0, 0, 0, 0]]))
        np.testing.assert_allclose(a.data, b.data, atol=1e-12)

    def test_bigru_sees_both_directions(self, rng):
        """The backward GRU gives early positions context from late tokens:
        sequences differing only in the last token yield different first-
        position contributions, unlike a purely causal encoder would."""
        from repro.autograd import GRUEncoder

        enc = GRUEncoder(vocab_size=30, embed_dim=5, hidden_size=6, output_size=4,
                         rng=rng, cell="bigru")
        a = enc(np.array([[1, 2, 3, 4]]))
        b = enc(np.array([[1, 2, 3, 9]]))
        assert not np.allclose(a.data, b.data)

    def test_bigru_fakedetector_trains(self, tiny_dataset, tiny_split):
        from repro.core import FakeDetector, FakeDetectorConfig

        config = FakeDetectorConfig(
            epochs=3, explicit_dim=20, vocab_size=300, max_seq_len=8,
            embed_dim=4, rnn_hidden=6, latent_dim=4, gdu_hidden=8,
            rnn_cell="bigru",
        )
        det = FakeDetector(config).fit(tiny_dataset, tiny_split)
        assert det.record.total[-1] < det.record.total[0]

    def test_lstm_encoder_path(self, rng):
        from repro.autograd import GRUEncoder

        enc = GRUEncoder(vocab_size=30, embed_dim=5, hidden_size=6, output_size=4,
                         rng=rng, cell="lstm")
        out = enc(rng.integers(1, 30, size=(3, 7)))
        assert out.shape == (3, 4)

    def test_lstm_padding_invariance(self, rng):
        from repro.autograd import GRUEncoder

        enc = GRUEncoder(vocab_size=30, embed_dim=5, hidden_size=6, output_size=4,
                         rng=rng, cell="lstm")
        a = enc(np.array([[3, 7, 5, 0, 0]]))
        b = enc(np.array([[3, 7, 5, 0, 0, 0, 0]]))
        np.testing.assert_allclose(a.data, b.data, atol=1e-12)

    def test_hflu_cnn_variant(self, rng):
        from repro.core import HFLU

        hflu = HFLU(vocab_size=30, embed_dim=5, rnn_hidden=6, latent_dim=4,
                    rng=rng, rnn_cell="cnn")
        out = hflu(rng.random((2, 9)), rng.integers(1, 30, size=(2, 8)))
        assert out.shape == (2, 13)

    def test_fakedetector_cnn_config_trains(self, tiny_dataset, tiny_split):
        from repro.core import FakeDetector, FakeDetectorConfig

        config = FakeDetectorConfig(
            epochs=3, explicit_dim=20, vocab_size=300, max_seq_len=10,
            embed_dim=5, rnn_hidden=6, latent_dim=5, gdu_hidden=8,
            rnn_cell="cnn",
        )
        det = FakeDetector(config).fit(tiny_dataset, tiny_split)
        assert det.record.total[-1] < det.record.total[0]
