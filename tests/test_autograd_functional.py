"""Tests for functional ops: softmax, cross-entropy, losses, dropout."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd import functional as F

from tests.helpers import finite_difference_check


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.standard_normal((4, 6))))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4))

    def test_nonnegative(self, rng):
        out = F.softmax(Tensor(rng.standard_normal((4, 6))))
        assert (out.data >= 0).all()

    def test_shift_invariance(self, rng):
        x = rng.standard_normal((3, 5))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_large_logits_stable(self):
        out = F.softmax(Tensor([[1000.0, -1000.0]]))
        np.testing.assert_allclose(out.data, [[1.0, 0.0]], atol=1e-12)

    def test_gradcheck(self, rng):
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        finite_difference_check(lambda x: (F.softmax(x) ** 2).sum(), [x])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.standard_normal((3, 4)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-10
        )


class TestCrossEntropy:
    def test_uniform_logits_give_log_c(self):
        logits = Tensor(np.zeros((5, 6)))
        loss = F.cross_entropy(logits, np.zeros(5, dtype=int))
        np.testing.assert_allclose(loss.item(), np.log(6))

    def test_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-8

    def test_reductions(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)))
        targets = np.array([0, 1, 2, 0])
        per = F.cross_entropy(logits, targets, reduction="none")
        assert per.shape == (4,)
        np.testing.assert_allclose(
            F.cross_entropy(logits, targets, reduction="sum").item(), per.data.sum()
        )
        np.testing.assert_allclose(
            F.cross_entropy(logits, targets, reduction="mean").item(), per.data.mean()
        )

    def test_bad_reduction(self, rng):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 2))), np.array([0, 1]), reduction="bogus")

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros(4)), np.array([0]))
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))

    def test_gradcheck(self, rng):
        logits = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        targets = np.array([0, 3, 2, 4])
        finite_difference_check(lambda l: F.cross_entropy(l, targets), [logits])

    def test_gradient_is_softmax_minus_onehot(self, rng):
        logits = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        targets = np.array([1, 0, 3])
        F.cross_entropy(logits, targets, reduction="sum").backward()
        probs = F.softmax(Tensor(logits.data)).data
        expected = probs.copy()
        expected[np.arange(3), targets] -= 1.0
        np.testing.assert_allclose(logits.grad, expected, atol=1e-10)

    def test_nll_matches_cross_entropy(self, rng):
        logits = Tensor(rng.standard_normal((4, 5)))
        targets = np.array([0, 1, 2, 3])
        ce = F.cross_entropy(logits, targets).item()
        nll = F.nll_loss(F.log_softmax(logits), targets).item()
        np.testing.assert_allclose(ce, nll, atol=1e-10)


class TestOtherLosses:
    def test_mse_zero_for_equal(self, rng):
        x = Tensor(rng.standard_normal(5))
        assert F.mse_loss(x, x).item() == 0.0

    def test_mse_gradcheck(self, rng):
        pred = Tensor(rng.standard_normal(6), requires_grad=True)
        target = Tensor(rng.standard_normal(6))
        finite_difference_check(lambda p: F.mse_loss(p, target), [pred])

    def test_mse_reductions(self, rng):
        pred = Tensor(rng.standard_normal((2, 3)))
        target = Tensor(rng.standard_normal((2, 3)))
        assert F.mse_loss(pred, target, reduction="none").shape == (2, 3)

    def test_hinge_zero_when_margins_large(self):
        scores = Tensor([[10.0, -10.0]])
        targets = np.array([[1.0, -1.0]])
        assert F.hinge_loss(scores, targets).item() == 0.0

    def test_hinge_penalizes_violations(self):
        scores = Tensor([[0.0, 0.0]])
        targets = np.array([[1.0, -1.0]])
        np.testing.assert_allclose(F.hinge_loss(scores, targets).item(), 1.0)

    def test_l2_regularization_value(self):
        params = [Tensor([1.0, 2.0], requires_grad=True), Tensor([[3.0]], requires_grad=True)]
        np.testing.assert_allclose(
            F.l2_regularization(params, 0.5).item(), 0.5 * (1 + 4 + 9)
        )

    def test_l2_regularization_empty(self):
        assert F.l2_regularization([], 1.0).item() == 0.0

    def test_l2_gradcheck(self, rng):
        p = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        finite_difference_check(lambda p: F.l2_regularization([p], 0.3), [p])


class TestDropout:
    def test_zero_rate_is_identity(self, rng):
        mask = F.dropout_mask((10, 10), 0.0, rng)
        np.testing.assert_allclose(mask, np.ones((10, 10)))

    def test_mask_values(self, rng):
        mask = F.dropout_mask((1000,), 0.4, rng)
        survivors = mask[mask > 0]
        np.testing.assert_allclose(survivors, 1.0 / 0.6)

    def test_survival_rate(self, rng):
        mask = F.dropout_mask((10000,), 0.3, rng)
        assert abs((mask > 0).mean() - 0.7) < 0.03

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            F.dropout_mask((2,), 1.0, rng)
        with pytest.raises(ValueError):
            F.dropout_mask((2,), -0.1, rng)


class TestAliases:
    def test_sigmoid_tanh_relu_wrappers(self, rng):
        x = rng.standard_normal(5)
        np.testing.assert_allclose(F.sigmoid(Tensor(x)).data, 1 / (1 + np.exp(-x)))
        np.testing.assert_allclose(F.tanh(Tensor(x)).data, np.tanh(x))
        np.testing.assert_allclose(F.relu(Tensor(x)).data, np.maximum(x, 0))
