"""Tests for Module/Parameter machinery and core layers."""

import numpy as np
import pytest

from repro.autograd import (
    Dropout,
    Embedding,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Tanh,
    Tensor,
)

from tests.helpers import finite_difference_check


class TestModule:
    def test_parameter_registration(self, rng):
        layer = Linear(3, 2, rng=rng)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_module_registration(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(3, 4, rng=rng)
                self.b = Linear(4, 2, rng=rng)

            def forward(self, x):
                return self.b(self.a(x))

        net = Net()
        names = [n for n, _ in net.named_parameters()]
        assert "a.weight" in names and "b.bias" in names
        assert len(list(net.parameters())) == 4

    def test_num_parameters(self, rng):
        layer = Linear(3, 2, rng=rng)
        assert layer.num_parameters() == 3 * 2 + 2

    def test_zero_grad_clears_all(self, rng):
        layer = Linear(3, 2, rng=rng)
        out = layer(Tensor(rng.standard_normal((4, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None and layer.bias.grad is None

    def test_train_eval_propagates(self, rng):
        net = Sequential(Linear(2, 2, rng=rng), Dropout(0.5, rng=rng))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_state_dict_roundtrip(self, rng):
        a = Linear(3, 2, rng=rng)
        b = Linear(3, 2, rng=np.random.default_rng(999))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_state_dict_is_a_copy(self, rng):
        layer = Linear(2, 2, rng=rng)
        state = layer.state_dict()
        state["weight"][:] = 0.0
        assert not np.allclose(layer.weight.data, 0.0)

    def test_load_state_dict_validates_keys(self, rng):
        layer = Linear(2, 2, rng=rng)
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": np.zeros((2, 2))})

    def test_load_state_dict_validates_shapes(self, rng):
        layer = Linear(2, 2, rng=rng)
        state = layer.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(5, 3, rng=rng)
        assert layer(Tensor(rng.standard_normal((7, 5)))).shape == (7, 3)

    def test_no_bias(self, rng):
        layer = Linear(5, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_matches_manual_affine(self, rng):
        layer = Linear(4, 2, rng=rng)
        x = rng.standard_normal((3, 4))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_invalid_dims(self, rng):
        with pytest.raises(ValueError):
            Linear(0, 3, rng=rng)

    def test_gradcheck(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = Tensor(rng.standard_normal((4, 3)))
        finite_difference_check(
            lambda w, b: ((x @ w + b) ** 2).sum(), [layer.weight, layer.bias]
        )

    def test_repr(self, rng):
        assert "Linear(in=3, out=2" in repr(Linear(3, 2, rng=rng))


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 4, rng=rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_lookup_values(self, rng):
        emb = Embedding(10, 4, rng=rng)
        out = emb(np.array([3]))
        np.testing.assert_allclose(out.data[0], emb.weight.data[3])

    def test_padding_idx_zeroed(self, rng):
        emb = Embedding(10, 4, rng=rng, padding_idx=0)
        np.testing.assert_allclose(emb(np.array([0])).data, np.zeros((1, 4)))

    def test_out_of_range_raises(self, rng):
        emb = Embedding(5, 2, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_accumulates_on_repeats(self, rng):
        emb = Embedding(5, 3, rng=rng)
        out = emb(np.array([2, 2, 2])).sum()
        out.backward()
        np.testing.assert_allclose(emb.weight.grad[2], np.full(3, 3.0))
        np.testing.assert_allclose(emb.weight.grad[0], np.zeros(3))

    def test_invalid_dims(self, rng):
        with pytest.raises(ValueError):
            Embedding(0, 3, rng=rng)


class TestDropout:
    def test_identity_in_eval(self, rng):
        drop = Dropout(0.9, rng=rng)
        drop.eval()
        x = Tensor(rng.standard_normal((5, 5)))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_zeroes_in_train(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        out = drop(x)
        zero_frac = (out.data == 0).mean()
        assert 0.4 < zero_frac < 0.6

    def test_expectation_preserved(self):
        drop = Dropout(0.3, rng=np.random.default_rng(0))
        x = Tensor(np.ones(100000))
        assert abs(drop(x).data.mean() - 1.0) < 0.02

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestSequentialAndActivations:
    def test_sequential_applies_in_order(self, rng):
        net = Sequential(Linear(3, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng), Tanh())
        out = net(Tensor(rng.standard_normal((5, 3))))
        assert out.shape == (5, 2)
        assert np.all(np.abs(out.data) <= 1.0)

    def test_sequential_parameters_collected(self, rng):
        net = Sequential(Linear(3, 4, rng=rng), Linear(4, 2, rng=rng))
        assert len(list(net.parameters())) == 4

    def test_relu_tanh_repr(self):
        assert repr(ReLU()) == "ReLU()"
        assert repr(Tanh()) == "Tanh()"

    def test_training_through_sequential(self, rng):
        # A 2-layer MLP must be able to fit XOR (nonlinear separability).
        from repro.autograd import functional as F
        from repro.autograd import optim

        net = Sequential(Linear(2, 8, rng=rng), Tanh(), Linear(8, 2, rng=rng))
        x = Tensor([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
        y = np.array([0, 1, 1, 0])
        opt = optim.Adam(net.parameters(), lr=0.05)
        for _ in range(300):
            loss = F.cross_entropy(net(x), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert (net(x).data.argmax(axis=1) == y).all()
