"""Tests for optimizers, gradient clipping and LR schedulers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd import optim


def quadratic_minimize(optimizer_factory, steps=300, dim=5, seed=0):
    """Minimize ||x - target||^2; return final distance to optimum."""
    rng = np.random.default_rng(seed)
    target = rng.standard_normal(dim)
    x = Tensor(rng.standard_normal(dim) * 3, requires_grad=True)
    opt = optimizer_factory([x])
    for _ in range(steps):
        diff = x - Tensor(target)
        loss = (diff * diff).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
    return float(np.abs(x.data - target).max())


class TestSGD:
    def test_converges_on_quadratic(self):
        assert quadratic_minimize(lambda p: optim.SGD(p, lr=0.1)) < 1e-6

    def test_momentum_converges(self):
        assert quadratic_minimize(lambda p: optim.SGD(p, lr=0.05, momentum=0.9)) < 1e-6

    def test_nesterov_converges(self):
        assert quadratic_minimize(
            lambda p: optim.SGD(p, lr=0.05, momentum=0.9, nesterov=True)
        ) < 1e-6

    def test_weight_decay_shrinks_params(self):
        x = Tensor(np.ones(3), requires_grad=True)
        opt = optim.SGD([x], lr=0.1, weight_decay=1.0)
        # Zero task gradient: only decay acts.
        x.grad = np.zeros(3)
        opt.step()
        np.testing.assert_allclose(x.data, np.full(3, 0.9))

    def test_skips_params_without_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        opt = optim.SGD([x], lr=0.1)
        opt.step()  # no grad set -> no change, no crash
        np.testing.assert_allclose(x.data, np.ones(3))

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            optim.SGD([Tensor([1.0], requires_grad=True)], lr=0.1, nesterov=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            optim.SGD([], lr=0.1)
        with pytest.raises(ValueError):
            optim.SGD([Tensor([1.0], requires_grad=True)], lr=-1)
        with pytest.raises(ValueError):
            optim.SGD([Tensor([1.0], requires_grad=True)], lr=0.1, momentum=-0.5)


class TestAdam:
    def test_converges_on_quadratic(self):
        assert quadratic_minimize(lambda p: optim.Adam(p, lr=0.1), steps=500) < 1e-4

    def test_bias_correction_first_step(self):
        # With bias correction the first Adam step has magnitude ~lr.
        x = Tensor(np.array([10.0]), requires_grad=True)
        opt = optim.Adam([x], lr=0.01)
        x.grad = np.array([4.0])
        opt.step()
        np.testing.assert_allclose(10.0 - x.data[0], 0.01, rtol=1e-5)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            optim.Adam([Tensor([1.0], requires_grad=True)], betas=(1.0, 0.9))

    def test_weight_decay(self):
        x = Tensor(np.ones(2), requires_grad=True)
        opt = optim.Adam([x], lr=0.1, weight_decay=0.5)
        x.grad = np.zeros(2)
        opt.step()
        assert (x.data < 1.0).all()


class TestAdaGradRMSProp:
    def test_adagrad_converges(self):
        assert quadratic_minimize(lambda p: optim.AdaGrad(p, lr=0.5), steps=800) < 1e-3

    def test_rmsprop_converges(self):
        assert quadratic_minimize(lambda p: optim.RMSProp(p, lr=0.05), steps=600) < 1e-3

    def test_rmsprop_decay_validation(self):
        with pytest.raises(ValueError):
            optim.RMSProp([Tensor([1.0], requires_grad=True)], decay=1.5)

    def test_adagrad_lr_decays_effectively(self):
        # Repeated identical gradients -> shrinking effective steps.
        x = Tensor(np.array([0.0]), requires_grad=True)
        opt = optim.AdaGrad([x], lr=1.0)
        deltas = []
        for _ in range(3):
            before = x.data.copy()
            x.grad = np.array([1.0])
            opt.step()
            deltas.append(float(np.abs(x.data - before).item()))
        assert deltas[0] > deltas[1] > deltas[2]


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        x.grad = np.array([0.1, 0.1, 0.1])
        norm = optim.clip_grad_norm([x], max_norm=10.0)
        np.testing.assert_allclose(x.grad, [0.1, 0.1, 0.1])
        np.testing.assert_allclose(norm, np.sqrt(0.03))

    def test_clips_to_max_norm(self):
        x = Tensor(np.zeros(2), requires_grad=True)
        x.grad = np.array([30.0, 40.0])  # norm 50
        optim.clip_grad_norm([x], max_norm=5.0)
        np.testing.assert_allclose(np.linalg.norm(x.grad), 5.0)

    def test_global_norm_across_params(self):
        a = Tensor(np.zeros(1), requires_grad=True)
        b = Tensor(np.zeros(1), requires_grad=True)
        a.grad, b.grad = np.array([3.0]), np.array([4.0])
        norm = optim.clip_grad_norm([a, b], max_norm=1.0)
        np.testing.assert_allclose(norm, 5.0)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        np.testing.assert_allclose(total, 1.0)

    def test_requires_positive_max_norm(self):
        with pytest.raises(ValueError):
            optim.clip_grad_norm([], max_norm=0)

    def test_ignores_gradless_params(self):
        x = Tensor(np.zeros(2), requires_grad=True)
        assert optim.clip_grad_norm([x], max_norm=1.0) == 0.0


class TestSchedulers:
    def test_step_lr(self):
        opt = optim.SGD([Tensor([1.0], requires_grad=True)], lr=1.0)
        sched = optim.StepLR(opt, step_size=2, gamma=0.5)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == 0.5
        sched.step()
        sched.step()
        assert opt.lr == 0.25

    def test_exponential_lr(self):
        opt = optim.SGD([Tensor([1.0], requires_grad=True)], lr=1.0)
        sched = optim.ExponentialLR(opt, gamma=0.9)
        for _ in range(3):
            sched.step()
        np.testing.assert_allclose(opt.lr, 0.9 ** 3)

    def test_step_lr_validation(self):
        opt = optim.SGD([Tensor([1.0], requires_grad=True)], lr=1.0)
        with pytest.raises(ValueError):
            optim.StepLR(opt, step_size=0)
