"""Property-based tests (hypothesis) for the autodiff engine.

These check algebraic identities the engine must satisfy for arbitrary
shapes/values — the invariants gradient correctness rests on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import Tensor, concatenate
from repro.autograd import functional as F

finite = st.floats(
    min_value=-50, max_value=50, allow_nan=False, allow_infinity=False, width=64
)


def small_arrays(max_side=5):
    return arrays(
        np.float64,
        st.tuples(st.integers(1, max_side), st.integers(1, max_side)),
        elements=finite,
    )


@given(small_arrays())
@settings(max_examples=50, deadline=None)
def test_addition_commutative(x):
    a, b = Tensor(x), Tensor(x[::-1].copy())
    np.testing.assert_allclose((a + b).data, (b + a).data)


@given(small_arrays())
@settings(max_examples=50, deadline=None)
def test_double_negation(x):
    a = Tensor(x)
    np.testing.assert_allclose((-(-a)).data, x)


@given(small_arrays())
@settings(max_examples=50, deadline=None)
def test_sum_matches_numpy(x):
    np.testing.assert_allclose(Tensor(x).sum().item(), x.sum(), rtol=1e-10, atol=1e-10)


@given(small_arrays())
@settings(max_examples=50, deadline=None)
def test_mean_of_sum_consistency(x):
    t = Tensor(x)
    np.testing.assert_allclose(
        t.mean().item() * x.size, t.sum().item(), rtol=1e-9, atol=1e-9
    )


@given(small_arrays())
@settings(max_examples=50, deadline=None)
def test_softmax_rows_on_simplex(x):
    out = F.softmax(Tensor(x)).data
    assert (out >= 0).all()
    np.testing.assert_allclose(out.sum(axis=1), np.ones(x.shape[0]), atol=1e-9)


@given(small_arrays())
@settings(max_examples=50, deadline=None)
def test_sigmoid_symmetry(x):
    # σ(-x) == 1 - σ(x)
    a = Tensor(x).sigmoid().data
    b = Tensor(-x).sigmoid().data
    np.testing.assert_allclose(a + b, np.ones_like(x), atol=1e-12)


@given(small_arrays())
@settings(max_examples=50, deadline=None)
def test_tanh_via_sigmoid_identity(x):
    # tanh(x) == 2σ(2x) - 1
    lhs = Tensor(x).tanh().data
    rhs = 2.0 * Tensor(2 * x).sigmoid().data - 1.0
    np.testing.assert_allclose(lhs, rhs, atol=1e-9)


@given(small_arrays())
@settings(max_examples=50, deadline=None)
def test_relu_idempotent(x):
    once = Tensor(x).relu()
    twice = once.relu()
    np.testing.assert_allclose(once.data, twice.data)


@given(small_arrays(), small_arrays())
@settings(max_examples=40, deadline=None)
def test_concat_then_split_is_identity(x, y):
    if x.shape[0] != y.shape[0]:
        y = np.resize(y, (x.shape[0], y.shape[1]))
    joined = concatenate([Tensor(x), Tensor(y)], axis=1)
    np.testing.assert_allclose(joined.data[:, : x.shape[1]], x)
    np.testing.assert_allclose(joined.data[:, x.shape[1]:], y)


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_gradient_of_sum_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(x))


@given(small_arrays(), finite)
@settings(max_examples=40, deadline=None)
def test_gradient_of_scalar_scale(x, c):
    t = Tensor(x, requires_grad=True)
    (t * c).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(x, c))


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_linearity_of_backward(x):
    """grad(2f) == 2 grad(f) for f = sum of squares."""
    t1 = Tensor(x, requires_grad=True)
    (t1 * t1).sum().backward()
    t2 = Tensor(x, requires_grad=True)
    ((t2 * t2).sum() * 2.0).backward()
    np.testing.assert_allclose(t2.grad, 2 * t1.grad, rtol=1e-9, atol=1e-9)


@given(
    arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(2, 6)), elements=finite),
    st.integers(0, 100),
)
@settings(max_examples=40, deadline=None)
def test_cross_entropy_nonnegative(logits, seed):
    rng = np.random.default_rng(seed)
    targets = rng.integers(0, logits.shape[1], size=logits.shape[0])
    loss = F.cross_entropy(Tensor(logits), targets)
    assert loss.item() >= -1e-9
