"""Tests for recurrent cells and the GRU sequence encoder."""

import numpy as np
import pytest

from repro.autograd import (
    GRUCell,
    GRUEncoder,
    LSTMCell,
    RNNCell,
    Tensor,
    run_rnn,
)
from repro.autograd import functional as F
from repro.autograd import optim

from tests.helpers import finite_difference_check


class TestRNNCell:
    def test_output_shape(self, rng):
        cell = RNNCell(4, 6, rng=rng)
        h = cell(Tensor(rng.standard_normal((3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6)

    def test_output_bounded_by_tanh(self, rng):
        cell = RNNCell(4, 6, rng=rng)
        h = cell(Tensor(rng.standard_normal((3, 4)) * 100), cell.initial_state(3))
        assert np.all(np.abs(h.data) <= 1.0)

    def test_gradcheck(self, rng):
        cell = RNNCell(3, 4, rng=rng)
        x = Tensor(rng.standard_normal((2, 3)))
        h0 = Tensor(rng.standard_normal((2, 4)))
        params = [cell.w_ih, cell.w_hh, cell.bias]
        finite_difference_check(lambda *p: (cell(x, h0) ** 2).sum(), params, tol=1e-4)


class TestGRUCell:
    def test_output_shape(self, rng):
        cell = GRUCell(4, 6, rng=rng)
        h = cell(Tensor(rng.standard_normal((3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6)

    def test_zero_update_gate_keeps_state(self, rng):
        cell = GRUCell(2, 3, rng=rng)
        # Force update gate towards 0 -> new state == old state.
        cell.b_z.data[:] = -50.0
        h0 = Tensor(rng.standard_normal((1, 3)))
        h1 = cell(Tensor(rng.standard_normal((1, 2))), h0)
        np.testing.assert_allclose(h1.data, h0.data, atol=1e-6)

    def test_full_update_gate_replaces_state(self, rng):
        cell = GRUCell(2, 3, rng=rng)
        cell.b_z.data[:] = 50.0  # update gate ≈ 1 -> h' = candidate only
        h0 = Tensor(np.full((1, 3), 5.0))
        h1 = cell(Tensor(rng.standard_normal((1, 2))), h0)
        assert np.all(np.abs(h1.data) <= 1.0)  # candidate is tanh-bounded

    def test_gradcheck_through_two_steps(self, rng):
        cell = GRUCell(2, 3, rng=rng)
        x1 = Tensor(rng.standard_normal((2, 2)))
        x2 = Tensor(rng.standard_normal((2, 2)))

        def loss(*params):
            h = cell(x1, cell.initial_state(2))
            h = cell(x2, h)
            return (h ** 2).sum()

        finite_difference_check(loss, list(cell.parameters()), tol=1e-4)

    def test_param_count(self, rng):
        cell = GRUCell(4, 6, rng=rng)
        # 3 gates x (input weight + hidden weight + bias)
        expected = 3 * (4 * 6 + 6 * 6 + 6)
        assert cell.num_parameters() == expected


class TestLSTMCell:
    def test_output_shapes(self, rng):
        cell = LSTMCell(4, 5, rng=rng)
        h, c = cell(Tensor(rng.standard_normal((3, 4))), cell.initial_state(3))
        assert h.shape == (3, 5) and c.shape == (3, 5)

    def test_forget_bias_initialized_to_one(self, rng):
        cell = LSTMCell(4, 5, rng=rng)
        np.testing.assert_allclose(cell.b_f.data, np.ones(5))

    def test_state_propagates(self, rng):
        cell = LSTMCell(2, 3, rng=rng)
        state = cell.initial_state(1)
        x = Tensor(rng.standard_normal((1, 2)))
        h1, c1 = cell(x, state)
        h2, c2 = cell(x, (h1, c1))
        assert not np.allclose(h1.data, h2.data)

    def test_gradcheck(self, rng):
        cell = LSTMCell(2, 3, rng=rng)
        x = Tensor(rng.standard_normal((2, 2)))

        def loss(*params):
            h, c = cell(x, cell.initial_state(2))
            return (h ** 2).sum() + (c ** 2).sum()

        finite_difference_check(loss, list(cell.parameters()), tol=1e-4)


class TestRunRNN:
    def test_final_state_shape(self, rng):
        cell = GRUCell(3, 5, rng=rng)
        inputs = Tensor(rng.standard_normal((2, 7, 3)))
        assert run_rnn(cell, inputs).shape == (2, 5)

    def test_sequence_output_shape(self, rng):
        cell = RNNCell(3, 5, rng=rng)
        inputs = Tensor(rng.standard_normal((2, 7, 3)))
        assert run_rnn(cell, inputs, return_sequence=True).shape == (2, 7, 5)

    def test_rejects_2d_input(self, rng):
        cell = RNNCell(3, 5, rng=rng)
        with pytest.raises(ValueError):
            run_rnn(cell, Tensor(rng.standard_normal((2, 3))))

    def test_sequence_last_equals_final(self, rng):
        cell = GRUCell(3, 4, rng=rng)
        inputs = Tensor(rng.standard_normal((2, 5, 3)))
        final = run_rnn(cell, inputs)
        seq = run_rnn(cell, inputs, return_sequence=True)
        np.testing.assert_allclose(seq.data[:, -1, :], final.data)


class TestGRUEncoder:
    def test_output_shape_and_range(self, rng):
        enc = GRUEncoder(vocab_size=20, embed_dim=4, hidden_size=6, output_size=5, rng=rng)
        out = enc(rng.integers(1, 20, size=(3, 8)))
        assert out.shape == (3, 5)
        assert np.all((out.data >= 0) & (out.data <= 1))  # sigmoid fusion

    def test_single_sequence_promoted_to_batch(self, rng):
        enc = GRUEncoder(vocab_size=20, embed_dim=4, hidden_size=6, output_size=5, rng=rng)
        out = enc(rng.integers(1, 20, size=10))
        assert out.shape == (1, 5)

    def test_padding_is_ignored(self, rng):
        enc = GRUEncoder(vocab_size=20, embed_dim=4, hidden_size=6, output_size=5, rng=rng)
        seq = np.array([[3, 7, 5, 0, 0, 0]])
        longer_pad = np.array([[3, 7, 5, 0, 0, 0, 0, 0, 0]])
        np.testing.assert_allclose(enc(seq).data, enc(longer_pad).data, atol=1e-12)

    def test_all_padding_gives_constant(self, rng):
        enc = GRUEncoder(vocab_size=20, embed_dim=4, hidden_size=6, output_size=5, rng=rng)
        out = enc(np.zeros((2, 5), dtype=int))
        # Zero hidden sum -> sigmoid(bias) rows, identical across batch.
        np.testing.assert_allclose(out.data[0], out.data[1])

    def test_order_sensitivity(self, rng):
        # The GRU must distinguish word order (unlike bag-of-words).
        enc = GRUEncoder(vocab_size=20, embed_dim=4, hidden_size=8, output_size=5, rng=rng)
        a = enc(np.array([[1, 2, 3, 4]]))
        b = enc(np.array([[4, 3, 2, 1]]))
        assert not np.allclose(a.data, b.data)

    def test_invalid_cell(self, rng):
        with pytest.raises(ValueError):
            GRUEncoder(10, 4, 4, 4, rng=rng, cell="transformer")

    def test_rnn_cell_variant(self, rng):
        enc = GRUEncoder(10, 4, 4, 3, rng=rng, cell="rnn")
        assert enc(rng.integers(1, 10, size=(2, 5))).shape == (2, 3)

    def test_learns_sequence_classification(self, rng):
        """The encoder + head must learn a simple token-presence task."""
        enc = GRUEncoder(vocab_size=12, embed_dim=6, hidden_size=10, output_size=6, rng=rng)
        from repro.autograd import Linear

        head = Linear(6, 2, rng=rng)
        # Class 1 iff token 5 appears.
        seqs = rng.integers(1, 12, size=(60, 6))
        labels = (seqs == 5).any(axis=1).astype(int)
        params = list(enc.parameters()) + list(head.parameters())
        opt = optim.Adam(params, lr=0.02)
        for _ in range(60):
            logits = head(enc(seqs))
            loss = F.cross_entropy(logits, labels)
            opt.zero_grad()
            loss.backward()
            opt.step()
        accuracy = (head(enc(seqs)).data.argmax(axis=1) == labels).mean()
        assert accuracy > 0.9
