"""Tests for model checkpoint save/load."""

import numpy as np
import pytest

from repro.autograd import Linear, Sequential, Tanh, Tensor, load_state, save_state


def test_roundtrip_restores_exact_weights(tmp_path, rng):
    a = Sequential(Linear(4, 8, rng=rng), Tanh(), Linear(8, 2, rng=rng))
    b = Sequential(
        Linear(4, 8, rng=np.random.default_rng(77)),
        Tanh(),
        Linear(8, 2, rng=np.random.default_rng(78)),
    )
    path = tmp_path / "model.npz"
    save_state(a, path)
    load_state(b, path)
    x = Tensor(rng.standard_normal((3, 4)))
    np.testing.assert_allclose(a(x).data, b(x).data)


def test_missing_file_raises(tmp_path, rng):
    with pytest.raises(FileNotFoundError):
        load_state(Linear(2, 2, rng=rng), tmp_path / "nope.npz")


def test_accepts_path_without_npz_suffix(tmp_path, rng):
    layer = Linear(2, 2, rng=rng)
    # np.savez appends .npz when missing; load_state must find it either way.
    save_state(layer, tmp_path / "ckpt")
    other = Linear(2, 2, rng=np.random.default_rng(5))
    load_state(other, tmp_path / "ckpt")
    np.testing.assert_allclose(layer.weight.data, other.weight.data)


def test_shape_mismatch_rejected(tmp_path, rng):
    save_state(Linear(2, 2, rng=rng), tmp_path / "m.npz")
    with pytest.raises((KeyError, ValueError)):
        load_state(Linear(3, 3, rng=rng), tmp_path / "m.npz")


def test_format_version_enforced(tmp_path, rng):
    path = tmp_path / "bad.npz"
    np.savez(path, weight=np.zeros((2, 2)), bias=np.zeros(2))
    with pytest.raises(ValueError):
        load_state(Linear(2, 2, rng=rng), path)


def test_fakedetector_model_roundtrip(tmp_path, small_dataset, small_split):
    """Full model save/load must reproduce logits exactly."""
    from repro.core import FakeDetector, FakeDetectorConfig

    config = FakeDetectorConfig(
        epochs=3, explicit_dim=40, vocab_size=500, max_seq_len=12,
        embed_dim=6, rnn_hidden=8, latent_dim=6, gdu_hidden=10,
    )
    det = FakeDetector(config).fit(small_dataset, small_split)
    logits_before = det.predict_logits()["article"]
    path = tmp_path / "fd.npz"
    save_state(det.model, path)

    # Perturb then restore.
    for p in det.model.parameters():
        p.data += 1.0
    load_state(det.model, path)
    logits_after = det.predict_logits()["article"]
    np.testing.assert_allclose(logits_before, logits_after)
