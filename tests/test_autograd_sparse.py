"""Tests for the differentiable graph-aggregation op."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.sparse import gather_segment_mean

from tests.helpers import finite_difference_check


class TestGatherSegmentMean:
    def test_simple_mean(self):
        src = Tensor(np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]))
        out = gather_segment_mean(src, np.array([0, 1]), np.array([0, 0]), 2)
        np.testing.assert_allclose(out.data[0], [2.0, 3.0])  # mean of rows 0,1
        np.testing.assert_allclose(out.data[1], [0.0, 0.0])  # empty segment

    def test_identity_routing(self):
        src = Tensor(np.arange(6, dtype=float).reshape(3, 2))
        out = gather_segment_mean(src, np.arange(3), np.arange(3), 3)
        np.testing.assert_allclose(out.data, src.data)

    def test_duplicate_gathers(self):
        src = Tensor(np.array([[2.0], [4.0]]))
        # Segment 0 receives row 0 twice and row 1 once -> mean = 8/3.
        out = gather_segment_mean(src, np.array([0, 0, 1]), np.array([0, 0, 0]), 1)
        np.testing.assert_allclose(out.data, [[8.0 / 3.0]])

    def test_empty_edge_list(self):
        src = Tensor(np.ones((3, 2)))
        out = gather_segment_mean(src, np.array([], dtype=int), np.array([], dtype=int), 2)
        np.testing.assert_allclose(out.data, np.zeros((2, 2)))

    def test_index_validation(self):
        src = Tensor(np.ones((2, 2)))
        with pytest.raises(IndexError):
            gather_segment_mean(src, np.array([5]), np.array([0]), 1)
        with pytest.raises(IndexError):
            gather_segment_mean(src, np.array([0]), np.array([3]), 1)
        with pytest.raises(ValueError):
            gather_segment_mean(src, np.array([0, 1]), np.array([0]), 1)

    def test_gradcheck(self, rng):
        src = Tensor(rng.standard_normal((6, 3)), requires_grad=True)
        gather = np.array([0, 1, 1, 5, 4, 2, 2])
        seg = np.array([0, 0, 1, 1, 2, 3, 3])
        finite_difference_check(
            lambda s: (gather_segment_mean(s, gather, seg, 4) ** 2).sum(), [src]
        )

    def test_gradient_zero_for_ungathered_rows(self, rng):
        src = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
        out = gather_segment_mean(src, np.array([0, 1]), np.array([0, 1]), 2)
        out.sum().backward()
        np.testing.assert_allclose(src.grad[2], np.zeros(2))
        np.testing.assert_allclose(src.grad[3], np.zeros(2))

    def test_permutation_invariance_within_segment(self, rng):
        src = Tensor(rng.standard_normal((5, 3)))
        gather = np.array([0, 1, 2])
        seg = np.array([0, 0, 0])
        a = gather_segment_mean(src, gather, seg, 1).data
        b = gather_segment_mean(src, gather[::-1].copy(), seg, 1).data
        np.testing.assert_allclose(a, b)

    def test_large_random_matches_dense(self, rng):
        """Compare against the dense normalized-adjacency formulation."""
        n_src, n_out, n_edges = 30, 12, 100
        src = Tensor(rng.standard_normal((n_src, 4)))
        gather = rng.integers(0, n_src, size=n_edges)
        seg = rng.integers(0, n_out, size=n_edges)
        sparse_out = gather_segment_mean(src, gather, seg, n_out).data

        dense = np.zeros((n_out, n_src))
        for g, s in zip(gather, seg):
            dense[s, g] += 1.0
        row_sums = dense.sum(axis=1, keepdims=True)
        dense = np.divide(
            dense, row_sums, out=np.zeros_like(dense), where=row_sums > 0
        )
        np.testing.assert_allclose(sparse_out, dense @ src.data, atol=1e-12)
