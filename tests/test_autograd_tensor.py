"""Unit tests for the Tensor autodiff core: ops, broadcasting, backward."""

import numpy as np
import pytest

from repro.autograd import Tensor, concatenate, ones, randn, stack, where, zeros

from tests.helpers import finite_difference_check


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_from_int_array_casts_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype == np.float64

    def test_scalar(self):
        t = Tensor(2.5)
        assert t.item() == 2.5
        assert t.size == 1

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad

    def test_zeros_ones_constructors(self):
        assert zeros(2, 3).shape == (2, 3)
        assert np.all(ones(4).data == 1.0)
        assert randn(2, 2, rng=np.random.default_rng(0)).shape == (2, 2)

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_len(self):
        assert len(Tensor([[1.0, 2.0], [3.0, 4.0]])) == 2


class TestArithmetic:
    def test_add(self):
        c = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(c.data, [4.0, 6.0])

    def test_add_scalar(self):
        c = Tensor([1.0, 2.0]) + 1.0
        np.testing.assert_allclose(c.data, [2.0, 3.0])

    def test_radd(self):
        c = 1.0 + Tensor([1.0])
        np.testing.assert_allclose(c.data, [2.0])

    def test_sub_and_rsub(self):
        np.testing.assert_allclose((Tensor([3.0]) - 1.0).data, [2.0])
        np.testing.assert_allclose((5.0 - Tensor([3.0])).data, [2.0])

    def test_mul_div(self):
        np.testing.assert_allclose((Tensor([2.0]) * Tensor([4.0])).data, [8.0])
        np.testing.assert_allclose((Tensor([8.0]) / Tensor([4.0])).data, [2.0])
        np.testing.assert_allclose((8.0 / Tensor([4.0])).data, [2.0])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow(self):
        np.testing.assert_allclose((Tensor([2.0]) ** 3).data, [8.0])

    def test_pow_requires_scalar(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([3.0])

    def test_matmul_2d(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[5.0], [6.0]])
        np.testing.assert_allclose((a @ b).data, [[17.0], [39.0]])

    def test_matmul_vector_cases(self):
        a = Tensor([1.0, 2.0])
        m = Tensor([[1.0, 0.0], [0.0, 1.0]])
        assert (a @ a).item() == 5.0
        np.testing.assert_allclose((a @ m).data, [1.0, 2.0])
        np.testing.assert_allclose((m @ a).data, [1.0, 2.0])

    def test_comparisons_return_arrays(self):
        mask = Tensor([1.0, 3.0]) > 2.0
        assert mask.dtype == bool
        np.testing.assert_array_equal(mask, [False, True])


class TestBackward:
    def test_simple_chain(self):
        x = Tensor(3.0, requires_grad=True)
        y = x * x + 2.0 * x + 1.0
        y.backward()
        assert y.item() == 16.0
        np.testing.assert_allclose(x.grad, 8.0)  # 2x + 2

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(1.0, requires_grad=True)
        (x * 2).backward()
        (x * 3).backward()
        np.testing.assert_allclose(x.grad, 5.0)

    def test_zero_grad(self):
        x = Tensor(1.0, requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_backward_requires_scalar_or_seed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_with_seed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [3.0, 30.0])

    def test_backward_seed_shape_mismatch(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 3).backward(np.array([1.0]))

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_diamond_graph(self):
        # x used twice through different paths must sum gradients.
        x = Tensor(2.0, requires_grad=True)
        a = x * 3
        b = x * 4
        (a + b).backward()
        np.testing.assert_allclose(x.grad, 7.0)

    def test_shared_subexpression(self):
        x = Tensor(2.0, requires_grad=True)
        y = x * x
        z = y + y
        z.backward()
        np.testing.assert_allclose(x.grad, 8.0)

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.backward()
        np.testing.assert_allclose(x.grad, 1.0)


class TestBroadcastGradients:
    def test_add_broadcast_bias(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal(4), requires_grad=True)
        finite_difference_check(lambda a, b: ((a + b) ** 2).sum(), [a, b])

    def test_mul_broadcast_scalar_tensor(self, rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((1, 3)), requires_grad=True)
        finite_difference_check(lambda a, b: (a * b).sum(), [a, b])

    def test_div_broadcast(self, rng):
        a = Tensor(rng.standard_normal((2, 3)) + 3.0, requires_grad=True)
        b = Tensor(rng.standard_normal(3) + 3.0, requires_grad=True)
        finite_difference_check(lambda a, b: (a / b).sum(), [a, b])

    def test_matmul_grads(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
        finite_difference_check(lambda a, b: ((a @ b) ** 2).sum(), [a, b])

    def test_matmul_vector_grads(self, rng):
        a = Tensor(rng.standard_normal(4), requires_grad=True)
        m = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        finite_difference_check(lambda a, m: ((a @ m) ** 2).sum(), [a, m])

    def test_matmul_matrix_vector_grads(self, rng):
        m = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        v = Tensor(rng.standard_normal(4), requires_grad=True)
        finite_difference_check(lambda m, v: ((m @ v) ** 2).sum(), [m, v])


class TestShapeOps:
    def test_reshape(self, rng):
        a = Tensor(rng.standard_normal((2, 6)), requires_grad=True)
        finite_difference_check(lambda a: (a.reshape(3, 4) ** 2).sum(), [a])

    def test_transpose_default(self, rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        out = a.T
        assert out.shape == (3, 2)
        finite_difference_check(lambda a: (a.T ** 2).sum(), [a])

    def test_transpose_axes(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        assert a.transpose(1, 0, 2).shape == (3, 2, 4)
        finite_difference_check(lambda a: (a.transpose(2, 0, 1) ** 2).sum(), [a], tol=1e-4)

    def test_getitem_rows(self, rng):
        a = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
        idx = np.array([0, 2, 2])
        finite_difference_check(lambda a: (a[idx] ** 2).sum(), [a])

    def test_getitem_duplicate_indices_accumulate(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        out = a[np.array([1, 1])].sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [[0, 0], [2, 2], [0, 0]])

    def test_squeeze_expand(self, rng):
        a = Tensor(rng.standard_normal((2, 1, 3)), requires_grad=True)
        assert a.squeeze(1).shape == (2, 3)
        assert a.expand_dims(0).shape == (1, 2, 1, 3)
        finite_difference_check(lambda a: (a.squeeze(1) ** 2).sum(), [a])

    def test_concatenate(self, rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
        out = concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        finite_difference_check(lambda a, b: (concatenate([a, b], axis=1) ** 2).sum(), [a, b])

    def test_stack(self, rng):
        a = Tensor(rng.standard_normal(3), requires_grad=True)
        b = Tensor(rng.standard_normal(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        finite_difference_check(lambda a, b: (stack([a, b]) ** 2).sum(), [a, b])

    def test_where(self, rng):
        cond = np.array([True, False, True])
        a = Tensor(rng.standard_normal(3), requires_grad=True)
        b = Tensor(rng.standard_normal(3), requires_grad=True)
        finite_difference_check(lambda a, b: (where(cond, a, b) ** 2).sum(), [a, b])


class TestReductions:
    def test_sum_all(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        finite_difference_check(lambda a: (a.sum() ** 2), [a])

    def test_sum_axis_keepdims(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        assert a.sum(axis=0).shape == (4,)
        assert a.sum(axis=0, keepdims=True).shape == (1, 4)
        finite_difference_check(lambda a: (a.sum(axis=1) ** 2).sum(), [a])

    def test_mean(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        np.testing.assert_allclose(a.mean().item(), a.data.mean())
        finite_difference_check(lambda a: (a.mean(axis=0) ** 2).sum(), [a])

    def test_mean_tuple_axis(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        out = a.mean(axis=(0, 2))
        assert out.shape == (3,)
        finite_difference_check(lambda a: (a.mean(axis=(0, 2)) ** 2).sum(), [a], tol=1e-4)

    def test_max(self):
        a = Tensor([[1.0, 5.0], [3.0, 2.0]], requires_grad=True)
        out = a.max(axis=1)
        np.testing.assert_allclose(out.data, [5.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [1, 0]])

    def test_max_ties_split_gradient(self):
        a = Tensor([2.0, 2.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5])


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["exp", "log", "sqrt", "tanh", "sigmoid", "relu", "abs"])
    def test_gradcheck(self, op, rng):
        data = rng.standard_normal((3, 3))
        if op in ("log", "sqrt"):
            data = np.abs(data) + 0.5
        a = Tensor(data, requires_grad=True)
        finite_difference_check(lambda a: (getattr(a, op)() ** 2).sum(), [a])

    def test_sigmoid_extreme_values_stable(self):
        a = Tensor([-1000.0, 1000.0])
        out = a.sigmoid()
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)
        assert np.isfinite(out.data).all()

    def test_relu_zeroes_negatives(self):
        out = Tensor([-1.0, 0.0, 2.0]).relu()
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_clip(self, rng):
        a = Tensor(rng.standard_normal(10) * 3, requires_grad=True)
        out = a.clip(-1.0, 1.0)
        assert out.data.max() <= 1.0 and out.data.min() >= -1.0
        out.sum().backward()
        inside = (a.data >= -1) & (a.data <= 1)
        np.testing.assert_allclose(a.grad, inside.astype(float))

    def test_tanh_range(self, rng):
        out = Tensor(rng.standard_normal(100) * 10).tanh()
        assert np.all(np.abs(out.data) <= 1.0)
