"""Tests for the SGNS embedding trainer shared by DeepWalk and LINE."""

import numpy as np
import pytest

from repro.baselines import NegativeSampler, SkipGramModel, walks_to_pairs


class TestNegativeSampler:
    def test_respects_frequency_skew(self, rng):
        freqs = np.array([1000.0, 1.0, 1.0, 1.0])
        sampler = NegativeSampler(freqs)
        draws = sampler.sample((5000,), rng)
        assert (draws == 0).mean() > 0.5

    def test_power_flattens_distribution(self, rng):
        freqs = np.array([1000.0, 1.0])
        flat = NegativeSampler(freqs, power=0.0)
        draws = flat.sample((4000,), rng)
        assert abs((draws == 0).mean() - 0.5) < 0.05

    def test_zero_frequency_items_possible_but_rare(self, rng):
        sampler = NegativeSampler(np.array([100.0, 0.0]))
        draws = sampler.sample((2000,), rng)
        assert (draws == 1).mean() < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            NegativeSampler(np.array([]))
        with pytest.raises(ValueError):
            NegativeSampler(np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            NegativeSampler(np.array([[1.0]]))


class TestWalksToPairs:
    def test_window_pairs(self):
        centers, contexts = walks_to_pairs([[10, 20, 30]], window=1)
        pairs = set(zip(centers.tolist(), contexts.tolist()))
        assert pairs == {(10, 20), (20, 10), (20, 30), (30, 20)}

    def test_window_two(self):
        centers, contexts = walks_to_pairs([[1, 2, 3]], window=2)
        assert (1, 3) in set(zip(centers.tolist(), contexts.tolist()))

    def test_empty_walks(self):
        centers, contexts = walks_to_pairs([], window=2)
        assert centers.size == 0 and contexts.size == 0

    def test_singleton_walk_no_pairs(self):
        centers, _ = walks_to_pairs([[5]], window=3)
        assert centers.size == 0

    def test_symmetric(self):
        centers, contexts = walks_to_pairs([[1, 2, 3, 4]], window=2)
        pairs = set(zip(centers.tolist(), contexts.tolist()))
        assert all((b, a) in pairs for a, b in pairs)


class TestSkipGramModel:
    def test_embedding_shape(self):
        model = SkipGramModel(num_nodes=10, dim=8)
        assert model.embeddings.shape == (10, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            SkipGramModel(num_nodes=0, dim=4)
        model = SkipGramModel(num_nodes=5, dim=4)
        sampler = NegativeSampler(np.ones(5))
        with pytest.raises(ValueError):
            model.train_pairs(np.array([0, 1]), np.array([0]), sampler)

    def test_empty_pairs_noop(self):
        model = SkipGramModel(num_nodes=5, dim=4)
        sampler = NegativeSampler(np.ones(5))
        before = model.embeddings.copy()
        loss = model.train_pairs(np.array([], dtype=int), np.array([], dtype=int), sampler)
        assert loss == 0.0
        np.testing.assert_allclose(model.embeddings, before)

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        # Two clusters: nodes 0-4 co-occur, nodes 5-9 co-occur.
        centers, contexts = [], []
        for _ in range(400):
            group = rng.integers(2)
            lo = group * 5
            a, b = rng.integers(lo, lo + 5, size=2)
            centers.append(a)
            contexts.append(b)
        centers, contexts = np.array(centers), np.array(contexts)
        sampler = NegativeSampler(np.ones(10))
        model = SkipGramModel(num_nodes=10, dim=8, seed=1)
        first = model.train_pairs(centers, contexts, sampler, epochs=1)
        last = model.train_pairs(centers, contexts, sampler, epochs=5)
        assert last < first

    def test_cluster_structure_emerges(self):
        """Nodes that co-occur end up closer than nodes that do not."""
        rng = np.random.default_rng(0)
        centers, contexts = [], []
        for _ in range(600):
            group = rng.integers(2)
            lo = group * 5
            a, b = rng.integers(lo, lo + 5, size=2)
            if a != b:
                centers.append(a)
                contexts.append(b)
        sampler = NegativeSampler(np.ones(10))
        model = SkipGramModel(num_nodes=10, dim=8, seed=1, lr=0.1)
        model.train_pairs(np.array(centers), np.array(contexts), sampler, epochs=8)
        emb = model.embeddings / (np.linalg.norm(model.embeddings, axis=1, keepdims=True) + 1e-12)
        sims = emb @ emb.T
        within = np.mean([sims[i, j] for i in range(5) for j in range(5) if i != j])
        across = np.mean([sims[i, j] for i in range(5) for j in range(5, 10)])
        assert within > across
