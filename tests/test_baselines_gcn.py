"""Tests for the GCN comparison baseline."""

import numpy as np
import pytest

from repro.baselines import GCNBaseline


class TestGCN:
    @pytest.fixture(scope="class")
    def fitted(self, request):
        dataset = request.getfixturevalue("small_dataset")
        split = request.getfixturevalue("small_split")
        model = GCNBaseline(hidden=16, epochs=50, explicit_dim=50, seed=0)
        return model.fit(dataset, split), dataset, split

    def test_loss_decreases(self, fitted):
        model, _, _ = fitted
        assert model.loss_history[-1] < model.loss_history[0] * 0.8

    def test_predictions_complete(self, fitted):
        model, dataset, _ = fitted
        for kind, store in (
            ("article", dataset.articles),
            ("creator", dataset.creators),
            ("subject", dataset.subjects),
        ):
            preds = model.predict(kind)
            assert set(preds) == set(store)
            assert all(0 <= v <= 5 for v in preds.values())

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GCNBaseline().predict("article")

    def test_unknown_kind(self, fitted):
        model, _, _ = fitted
        with pytest.raises(ValueError):
            model.predict("meme")

    def test_beats_chance_on_train_articles(self, fitted):
        model, dataset, split = fitted
        preds = model.predict("article")
        train = split.articles.train
        y_true = [dataset.articles[a].label.class_index for a in train]
        y_pred = [preds[a] for a in train]
        acc = np.mean([t == p for t, p in zip(y_true, y_pred)])
        majority = max(np.bincount(y_true)) / len(y_true)
        assert acc > majority - 0.02  # graph conv fits at least the marginal

    def test_deterministic_for_seed(self, small_dataset, small_split):
        a = GCNBaseline(hidden=8, epochs=5, explicit_dim=30, seed=3).fit(
            small_dataset, small_split
        )
        b = GCNBaseline(hidden=8, epochs=5, explicit_dim=30, seed=3).fit(
            small_dataset, small_split
        )
        assert a.predict("article") == b.predict("article")
