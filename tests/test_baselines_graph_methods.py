"""Tests for the structure-only baselines: DeepWalk, LINE, label propagation."""

import numpy as np
import pytest

from repro.baselines import (
    DeepWalkBaseline,
    LabelPropagationBaseline,
    LINEBaseline,
    LINEEmbedding,
)
from repro.data.credibility import derive_entity_label


class TestDeepWalk:
    @pytest.fixture(scope="class")
    def fitted(self, request):
        dataset = request.getfixturevalue("tiny_dataset")
        split = request.getfixturevalue("tiny_split")
        model = DeepWalkBaseline(dim=16, num_walks=3, walk_length=12, epochs=2, seed=0)
        return model.fit(dataset, split), dataset, split

    def test_embeddings_cover_all_nodes(self, fitted):
        model, dataset, _ = fitted
        total = dataset.num_articles + dataset.num_creators + dataset.num_subjects
        assert model.embeddings.shape == (total, 16)

    def test_predictions_complete(self, fitted):
        model, dataset, _ = fitted
        for kind, store in (
            ("article", dataset.articles),
            ("creator", dataset.creators),
            ("subject", dataset.subjects),
        ):
            preds = model.predict(kind)
            assert set(preds) == set(store)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DeepWalkBaseline().predict("article")

    def test_connected_nodes_embed_closer(self, fitted):
        """A creator should be closer to its own articles than to random ones."""
        model, dataset, _ = fitted
        from repro.graph import NodeType

        emb = model.embeddings
        index = model._node_index
        by_creator = dataset.articles_by_creator()
        prolific = max(by_creator, key=lambda c: len(by_creator[c]))
        own_articles = [a.article_id for a in by_creator[prolific]]
        other_articles = [
            a for a in dataset.articles if a not in set(own_articles)
        ]
        c_vec = emb[index[(NodeType.CREATOR, prolific)]]

        def mean_sim(article_ids):
            vecs = np.array([emb[index[(NodeType.ARTICLE, a)]] for a in article_ids])
            norms = np.linalg.norm(vecs, axis=1) * (np.linalg.norm(c_vec) + 1e-12)
            return float(((vecs @ c_vec) / (norms + 1e-12)).mean())

        assert mean_sim(own_articles) > mean_sim(other_articles[:30])


class TestLINE:
    def test_embedding_dim_split(self):
        with pytest.raises(ValueError):
            LINEEmbedding(dim=7)

    def test_edge_shape_validation(self):
        line = LINEEmbedding(dim=4)
        with pytest.raises(ValueError):
            line.fit(np.zeros((3,)), 5, np.ones(5))

    def test_fit_predict(self, tiny_dataset, tiny_split):
        model = LINEBaseline(dim=8, samples_per_edge=6, seed=0)
        model.fit(tiny_dataset, tiny_split)
        preds = model.predict("article")
        assert set(preds) == set(tiny_dataset.articles)

    def test_embeddings_concatenate_orders(self, tiny_dataset, tiny_split):
        model = LINEBaseline(dim=8, samples_per_edge=4, seed=0)
        model.embed(tiny_dataset)
        total = (
            tiny_dataset.num_articles
            + tiny_dataset.num_creators
            + tiny_dataset.num_subjects
        )
        assert model.embeddings.shape == (total, 8)

    def test_connected_endpoints_correlate(self, tiny_dataset, tiny_split):
        from repro.graph import HeterogeneousNetwork

        model = LINEBaseline(dim=16, samples_per_edge=30, seed=0)
        model.embed(tiny_dataset)
        emb = model.embeddings[:, :8]  # first-order half
        network = HeterogeneousNetwork.from_dataset(tiny_dataset)
        edges = network.edges()
        index = model._node_index
        rng = np.random.default_rng(0)

        def sim(u, v):
            a, b = emb[index[u]], emb[index[v]]
            return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))

        edge_sims = [sim(a, b) for _, a, b in edges[:80]]
        nodes = network.nodes()
        rand_sims = []
        for _ in range(80):
            u = nodes[rng.integers(len(nodes))]
            v = nodes[rng.integers(len(nodes))]
            if u != v:
                rand_sims.append(sim(u, v))
        assert np.mean(edge_sims) > np.mean(rand_sims)


class TestLabelPropagation:
    def test_validation(self):
        with pytest.raises(ValueError):
            LabelPropagationBaseline(damping=0)
        with pytest.raises(ValueError):
            LabelPropagationBaseline(iterations=0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LabelPropagationBaseline().predict("article")

    def test_scores_within_label_range(self, small_dataset, small_split):
        model = LabelPropagationBaseline().fit(small_dataset, small_split)
        for kind in ("article", "creator", "subject"):
            scores = model.predict_scores(kind)
            assert all(1.0 <= s <= 6.0 for s in scores.values())

    def test_train_labels_steer_scores(self, small_dataset, small_split):
        """Label spreading re-injects training scores: known-true articles
        must end up with higher scores than known-false ones on average."""
        model = LabelPropagationBaseline().fit(small_dataset, small_split)
        scores = model.predict_scores("article")
        true_scores = [
            scores[a]
            for a in small_split.articles.train
            if small_dataset.articles[a].label.is_true_class
        ]
        false_scores = [
            scores[a]
            for a in small_split.articles.train
            if not small_dataset.articles[a].label.is_true_class
        ]
        assert np.mean(true_scores) > np.mean(false_scores) + 0.3

    def test_converges(self, small_dataset, small_split):
        model = LabelPropagationBaseline(iterations=200, tolerance=1e-8)
        model.fit(small_dataset, small_split)
        assert model.converged_iterations_ < 200

    def test_creator_prediction_tracks_derived_label(self, small_dataset, small_split):
        """With θ=1 training labels, a creator's propagated score should be
        close to the weighted-sum ground truth of its articles."""
        model = LabelPropagationBaseline(damping=0.95).fit(small_dataset, small_split)
        preds = model.predict("creator")
        by_creator = small_dataset.articles_by_creator()
        hits = total = 0
        for cid in small_split.creators.test:
            articles = by_creator[cid]
            if len(articles) < 3:
                continue
            derived = derive_entity_label(a.label for a in articles)
            total += 1
            if abs(preds[cid] - derived.class_index) <= 1:
                hits += 1
        if total:
            assert hits / total > 0.6

    def test_beats_chance_on_articles(self, small_dataset, small_split):
        model = LabelPropagationBaseline().fit(small_dataset, small_split)
        preds = model.predict("article")
        test_ids = small_split.articles.test
        y_true = [small_dataset.articles[a].label.binary for a in test_ids]
        y_pred = [int(preds[a] >= 3) for a in test_ids]
        assert np.mean([t == p for t, p in zip(y_true, y_pred)]) > 0.45
