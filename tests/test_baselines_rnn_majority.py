"""Tests for the RNN text baseline and the majority floor."""

import numpy as np
import pytest

from repro.baselines import MajorityBaseline, RNNBaseline


class TestMajority:
    def test_predicts_single_class(self, tiny_dataset, tiny_split):
        model = MajorityBaseline().fit(tiny_dataset, tiny_split)
        preds = model.predict("article")
        assert len(set(preds.values())) == 1

    def test_picks_most_common_train_label(self, tiny_dataset, tiny_split):
        model = MajorityBaseline().fit(tiny_dataset, tiny_split)
        train_labels = [
            tiny_dataset.articles[a].label.class_index
            for a in tiny_split.articles.train
        ]
        expected = max(set(train_labels), key=train_labels.count)
        assert set(model.predict("article").values()) == {expected}

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            MajorityBaseline().predict("article")


class TestRNNBaseline:
    @pytest.fixture(scope="class")
    def fitted(self, request):
        dataset = request.getfixturevalue("tiny_dataset")
        split = request.getfixturevalue("tiny_split")
        model = RNNBaseline(
            vocab_size=500, embed_dim=6, hidden=8, latent=6,
            max_seq_len=12, epochs=8, seed=0,
        )
        return model.fit(dataset, split), dataset, split

    def test_predictions_complete(self, fitted):
        model, dataset, _ = fitted
        for kind, store in (
            ("article", dataset.articles),
            ("creator", dataset.creators),
            ("subject", dataset.subjects),
        ):
            preds = model.predict(kind)
            assert set(preds) == set(store)
            assert all(0 <= v <= 5 for v in preds.values())

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RNNBaseline().predict("article")

    def test_unknown_kind_rejected(self, fitted):
        model, _, _ = fitted
        with pytest.raises(ValueError):
            model.predict("blog")

    def test_fits_training_set_better_than_chance(self, fitted):
        model, dataset, split = fitted
        preds = model.predict("article")
        train = split.articles.train
        y_true = [dataset.articles[a].label.binary for a in train]
        y_pred = [int(preds[a] >= 3) for a in train]
        majority = max(np.mean(y_true), 1 - np.mean(y_true))
        assert np.mean([t == p for t, p in zip(y_true, y_pred)]) >= majority - 0.05
