"""Tests for the from-scratch linear SVM and its baseline wrapper."""

import numpy as np
import pytest

from repro.baselines import LinearSVM, SVMBaseline


def linearly_separable(n=60, seed=0):
    rng = np.random.default_rng(seed)
    x0 = rng.normal([-2, -2], 0.5, size=(n // 2, 2))
    x1 = rng.normal([2, 2], 0.5, size=(n // 2, 2))
    features = np.vstack([x0, x1])
    labels = np.array([0] * (n // 2) + [1] * (n // 2))
    return features, labels


class TestLinearSVM:
    def test_separates_linear_data(self):
        features, labels = linearly_separable()
        svm = LinearSVM(num_classes=2, epochs=100).fit(features, labels)
        assert (svm.predict(features) == labels).all()

    def test_three_class_one_vs_rest(self):
        rng = np.random.default_rng(1)
        centers = np.array([[0, 4], [4, -2], [-4, -2]])
        features = np.vstack([rng.normal(c, 0.5, size=(30, 2)) for c in centers])
        labels = np.repeat([0, 1, 2], 30)
        svm = LinearSVM(num_classes=3, epochs=150).fit(features, labels)
        assert (svm.predict(features) == labels).mean() > 0.95

    def test_objective_decreases(self):
        features, labels = linearly_separable()
        svm_short = LinearSVM(num_classes=2, epochs=5, seed=3).fit(features, labels)
        obj_short = svm_short.hinge_objective(features, labels)
        svm_long = LinearSVM(num_classes=2, epochs=200, seed=3).fit(features, labels)
        obj_long = svm_long.hinge_objective(features, labels)
        assert obj_long < obj_short

    def test_decision_function_shape(self):
        features, labels = linearly_separable()
        svm = LinearSVM(num_classes=2, epochs=10).fit(features, labels)
        assert svm.decision_function(features).shape == (60, 2)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearSVM(num_classes=2).predict(np.zeros((1, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearSVM(num_classes=1)
        svm = LinearSVM(num_classes=2)
        with pytest.raises(ValueError):
            svm.fit(np.zeros((3,)), [0, 1, 0])
        with pytest.raises(ValueError):
            svm.fit(np.zeros((3, 2)), [0, 1])
        with pytest.raises(ValueError):
            svm.fit(np.zeros((0, 2)), [])

    def test_regularization_shrinks_weights(self):
        features, labels = linearly_separable()
        light = LinearSVM(num_classes=2, reg=1e-5, epochs=150, seed=0).fit(features, labels)
        heavy = LinearSVM(num_classes=2, reg=1.0, epochs=150, seed=0).fit(features, labels)
        assert np.abs(heavy.weights).sum() < np.abs(light.weights).sum()

    def test_deterministic_for_seed(self):
        features, labels = linearly_separable()
        a = LinearSVM(num_classes=2, epochs=30, seed=7).fit(features, labels)
        b = LinearSVM(num_classes=2, epochs=30, seed=7).fit(features, labels)
        np.testing.assert_allclose(a.weights, b.weights)


class TestSVMBaseline:
    def test_fit_predict_all_kinds(self, small_dataset, small_split):
        baseline = SVMBaseline(explicit_dim=40, epochs=60).fit(small_dataset, small_split)
        for kind, store in (
            ("article", small_dataset.articles),
            ("creator", small_dataset.creators),
            ("subject", small_dataset.subjects),
        ):
            preds = baseline.predict(kind)
            assert set(preds) == set(store)
            assert all(0 <= c <= 5 for c in preds.values())

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            SVMBaseline().predict("article")

    def test_unknown_kind(self, small_dataset, small_split):
        baseline = SVMBaseline(explicit_dim=30, epochs=10).fit(small_dataset, small_split)
        with pytest.raises(ValueError):
            baseline.predict("meme")

    def test_beats_chance_on_binary_articles(self, small_dataset, small_split):
        baseline = SVMBaseline(explicit_dim=60, epochs=120).fit(small_dataset, small_split)
        preds = baseline.predict("article")
        test_ids = small_split.articles.test
        y_true = [small_dataset.articles[a].label.binary for a in test_ids]
        y_pred = [int(preds[a] >= 3) for a in test_ids]
        assert np.mean([t == p for t, p in zip(y_true, y_pred)]) > 0.5
