"""Tests for class-weighted cross-entropy and its trainer integration."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd import functional as F

from tests.helpers import finite_difference_check


class TestInverseFrequencyWeights:
    def test_balanced_classes_get_unit_weights(self):
        weights = F.inverse_frequency_weights(np.array([0, 1, 0, 1]), 2)
        np.testing.assert_allclose(weights, [1.0, 1.0])

    def test_rare_class_weighted_up(self):
        weights = F.inverse_frequency_weights(np.array([0, 0, 0, 1]), 2)
        assert weights[1] == 3 * weights[0]

    def test_absent_class_zero(self):
        weights = F.inverse_frequency_weights(np.array([0, 0]), 3)
        assert weights[1] == 0.0 and weights[2] == 0.0

    def test_mean_one_over_present(self):
        weights = F.inverse_frequency_weights(np.array([0, 0, 1, 2, 2, 2]), 4)
        present = weights[weights > 0]
        np.testing.assert_allclose(present.mean(), 1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            F.inverse_frequency_weights(np.array([], dtype=int), 2)


class TestWeightedCrossEntropy:
    def test_uniform_weights_match_unweighted(self, rng):
        logits = Tensor(rng.standard_normal((5, 3)))
        targets = np.array([0, 1, 2, 0, 1])
        plain = F.cross_entropy(logits, targets).item()
        weighted = F.cross_entropy(
            logits, targets, class_weights=np.ones(3)
        ).item()
        assert plain == pytest.approx(weighted)

    def test_zero_weight_removes_class(self, rng):
        logits = Tensor(rng.standard_normal((4, 2)))
        targets = np.array([0, 0, 1, 1])
        weights = np.array([1.0, 0.0])
        weighted = F.cross_entropy(logits, targets, class_weights=weights).item()
        only_class0 = F.cross_entropy(logits[np.array([0, 1])], targets[:2]).item()
        assert weighted == pytest.approx(only_class0)

    def test_shape_validation(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)))
        with pytest.raises(ValueError):
            F.cross_entropy(logits, np.array([0, 1, 2, 0]), class_weights=np.ones(2))
        with pytest.raises(ValueError):
            F.cross_entropy(
                logits, np.array([0, 1, 2, 0]), class_weights=np.array([-1.0, 1, 1])
            )

    def test_all_zero_weights_rejected(self, rng):
        logits = Tensor(rng.standard_normal((2, 2)))
        with pytest.raises(ValueError):
            F.cross_entropy(logits, np.array([0, 0]), class_weights=np.array([0.0, 1.0]))

    def test_gradcheck(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        targets = np.array([0, 2, 1, 0])
        weights = np.array([0.5, 2.0, 1.0])
        finite_difference_check(
            lambda l: F.cross_entropy(l, targets, class_weights=weights), [logits]
        )

    def test_reduction_none_scales_per_sample(self, rng):
        logits = Tensor(rng.standard_normal((3, 2)))
        targets = np.array([0, 1, 0])
        weights = np.array([2.0, 0.5])
        per = F.cross_entropy(logits, targets, reduction="none", class_weights=weights)
        plain = F.cross_entropy(logits, targets, reduction="none")
        np.testing.assert_allclose(per.data, plain.data * weights[targets])


class TestTrainerIntegration:
    def test_weighted_training_runs(self, tiny_dataset, tiny_split):
        from repro.core import FakeDetector, FakeDetectorConfig

        config = FakeDetectorConfig(
            epochs=4, explicit_dim=20, vocab_size=300, max_seq_len=8,
            embed_dim=4, rnn_hidden=6, latent_dim=4, gdu_hidden=8,
            class_weighted_loss=True, seed=0,
        )
        det = FakeDetector(config).fit(tiny_dataset, tiny_split)
        assert det.record.total[-1] < det.record.total[0]

    def test_weighting_changes_loss_trajectory(self, tiny_dataset, tiny_split):
        from repro.core import FakeDetector, FakeDetectorConfig

        base = dict(
            epochs=2, explicit_dim=20, vocab_size=300, max_seq_len=8,
            embed_dim=4, rnn_hidden=6, latent_dim=4, gdu_hidden=8, seed=0,
        )
        plain = FakeDetector(FakeDetectorConfig(**base)).fit(tiny_dataset, tiny_split)
        weighted = FakeDetector(
            FakeDetectorConfig(**base, class_weighted_loss=True)
        ).fit(tiny_dataset, tiny_split)
        assert plain.record.total[0] != weighted.record.total[0]
