"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.data import load_dataset


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(["generate", "out.jsonl", "--scale", "0.01"])
        assert args.command == "generate"
        assert args.scale == 0.01

    def test_evaluate_methods_subset(self):
        args = build_parser().parse_args(["evaluate", "--methods", "svm", "lp"])
        assert args.methods == ["svm", "lp"]


class TestCommands:
    def test_generate_writes_corpus(self, tmp_path, capsys):
        out = tmp_path / "corpus.jsonl"
        code = main(["generate", str(out), "--scale", "0.01", "--seed", "3"])
        assert code == 0
        dataset = load_dataset(out)
        assert dataset.num_articles > 50
        assert "wrote" in capsys.readouterr().out

    def test_analyze_prints_table1(self, tmp_path, capsys):
        code = main(["analyze", "--scale", "0.01", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Figure 1(a)" in out

    def test_analyze_from_file(self, tmp_path, capsys):
        path = tmp_path / "c.jsonl"
        main(["generate", str(path), "--scale", "0.01"])
        capsys.readouterr()
        code = main(["analyze", "--dataset", str(path)])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_train_reports_metrics(self, tmp_path, capsys):
        ckpt = tmp_path / "model.npz"
        code = main([
            "train", "--scale", "0.01", "--seed", "3", "--epochs", "3",
            "--explicit-dim", "30", "--max-seq-len", "10",
            "--checkpoint", str(ckpt),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "article" in out and "bi-acc=" in out
        assert ckpt.exists()

    def test_evaluate_subset(self, capsys):
        code = main([
            "evaluate", "--scale", "0.01", "--seed", "3",
            "--thetas", "1.0", "--methods", "svm", "lp",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4(a)" in out
        assert "svm" in out


class TestServing:
    @pytest.fixture(scope="class")
    def checkpoint(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("serve") / "detector"
        code = main([
            "train", "--scale", "0.01", "--seed", "3", "--epochs", "2",
            "--explicit-dim", "20", "--max-seq-len", "8",
            "--save", str(path),
        ])
        assert code == 0
        return path

    @staticmethod
    def _write_requests(path):
        import json

        lines = [
            {"article_id": "r1", "text": "secret rigged hoax conspiracy"},
            {"article_id": "r2", "text": "census report data analysis",
             "creator_id": "creator_0", "subject_ids": ["subject_0"]},
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        return [line["article_id"] for line in lines]

    def test_train_save_writes_checkpoint(self, checkpoint):
        assert (checkpoint / "detector.json").exists()
        assert (checkpoint / "arrays.npz").exists()
        assert (checkpoint / "model.npz").exists()

    def test_infer_emits_response_document(self, checkpoint, tmp_path, capsys):
        import json

        requests = tmp_path / "requests.jsonl"
        ids = self._write_requests(requests)
        code = main(["infer", str(checkpoint), "--articles", str(requests), "--proba"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out.strip())
        assert doc["schema"] == "repro.serve.response/1"
        assert len(doc["model_digest"]) == 16
        assert doc["timing"]["total_ms"] > 0
        assert [p["entity_id"] for p in doc["predictions"]] == ids
        for p in doc["predictions"]:
            assert 0 <= p["class_index"] <= 5
            assert len(p["proba"]) == 6

    def test_serve_batch_streams_response_documents(self, checkpoint, tmp_path, capsys):
        import json

        requests = tmp_path / "stream.jsonl"
        ids = self._write_requests(requests)
        code = main([
            "serve", "batch", str(checkpoint), "--input", str(requests),
            "--max-batch-size", "4", "--max-wait", "0.005",
        ])
        assert code == 0
        captured = capsys.readouterr()
        docs = [json.loads(l) for l in captured.out.strip().splitlines()]
        assert all(d["schema"] == "repro.serve.response/1" for d in docs)
        returned = [p["entity_id"] for d in docs for p in d["predictions"]]
        assert sorted(returned) == sorted(ids)
        assert "serving metrics:" in captured.err
        assert "throughput_rps" in captured.err

    def test_bare_serve_compat_shim(self, checkpoint, tmp_path, capsys):
        import json

        requests = tmp_path / "compat.jsonl"
        ids = self._write_requests(requests)
        code = main(["serve", str(checkpoint), "--input", str(requests)])
        assert code == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        docs = [json.loads(l) for l in captured.out.strip().splitlines()]
        returned = [p["entity_id"] for d in docs for p in d["predictions"]]
        assert sorted(returned) == sorted(ids)

    def test_serve_http_round_trip(self, checkpoint, tmp_path, capsys):
        import json
        import urllib.request

        from repro.serve import REQUEST_SCHEMA, PredictionService

        service = PredictionService(checkpoint, workers=2, shards=2,
                                    max_wait=0.001)
        payload = {
            "schema": REQUEST_SCHEMA,
            "articles": [{"article_id": "h1",
                          "text": "secret rigged hoax conspiracy"}],
        }
        with service:
            request = urllib.request.Request(
                service.url + "/v1/predict",
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"}, method="POST",
            )
            with urllib.request.urlopen(request, timeout=60.0) as reply:
                doc = json.loads(reply.read().decode("utf-8"))
        assert doc["schema"] == "repro.serve.response/1"
        assert doc["predictions"][0]["entity_id"] == "h1"

    def test_serve_http_parser_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "serve", "http", "ckpt", "--workers", "4", "--shards", "2",
            "--queue-depth", "8", "--duration", "0.5",
        ])
        assert args.workers == 4
        assert args.shards == 2
        assert args.queue_depth == 8
        assert args.duration == 0.5


class TestTune:
    def test_parse_grid(self):
        from repro.cli import _parse_grid

        grid = _parse_grid("gdu_hidden=8,16;alpha=0.001,0.01;rnn_cell=gru,cnn")
        assert grid["gdu_hidden"] == [8, 16]
        assert grid["alpha"] == [0.001, 0.01]
        assert grid["rnn_cell"] == ["gru", "cnn"]

    def test_parse_grid_validation(self):
        from repro.cli import _parse_grid

        with pytest.raises(ValueError):
            _parse_grid("")
        with pytest.raises(ValueError):
            _parse_grid("no-equals-here")

    def test_tune_command_runs(self, capsys):
        code = main([
            "tune", "--scale", "0.01", "--seed", "3", "--epochs", "2",
            "--inner-folds", "2", "--grid", "gdu_hidden=8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ranking" in out
        assert "gdu_hidden=8" in out
