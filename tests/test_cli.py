"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.data import load_dataset


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(["generate", "out.jsonl", "--scale", "0.01"])
        assert args.command == "generate"
        assert args.scale == 0.01

    def test_evaluate_methods_subset(self):
        args = build_parser().parse_args(["evaluate", "--methods", "svm", "lp"])
        assert args.methods == ["svm", "lp"]


class TestCommands:
    def test_generate_writes_corpus(self, tmp_path, capsys):
        out = tmp_path / "corpus.jsonl"
        code = main(["generate", str(out), "--scale", "0.01", "--seed", "3"])
        assert code == 0
        dataset = load_dataset(out)
        assert dataset.num_articles > 50
        assert "wrote" in capsys.readouterr().out

    def test_analyze_prints_table1(self, tmp_path, capsys):
        code = main(["analyze", "--scale", "0.01", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Figure 1(a)" in out

    def test_analyze_from_file(self, tmp_path, capsys):
        path = tmp_path / "c.jsonl"
        main(["generate", str(path), "--scale", "0.01"])
        capsys.readouterr()
        code = main(["analyze", "--dataset", str(path)])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_train_reports_metrics(self, tmp_path, capsys):
        ckpt = tmp_path / "model.npz"
        code = main([
            "train", "--scale", "0.01", "--seed", "3", "--epochs", "3",
            "--explicit-dim", "30", "--max-seq-len", "10",
            "--checkpoint", str(ckpt),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "article" in out and "bi-acc=" in out
        assert ckpt.exists()

    def test_evaluate_subset(self, capsys):
        code = main([
            "evaluate", "--scale", "0.01", "--seed", "3",
            "--thetas", "1.0", "--methods", "svm", "lp",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4(a)" in out
        assert "svm" in out


class TestServing:
    @pytest.fixture(scope="class")
    def checkpoint(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("serve") / "detector"
        code = main([
            "train", "--scale", "0.01", "--seed", "3", "--epochs", "2",
            "--explicit-dim", "20", "--max-seq-len", "8",
            "--save", str(path),
        ])
        assert code == 0
        return path

    @staticmethod
    def _write_requests(path):
        import json

        lines = [
            {"article_id": "r1", "text": "secret rigged hoax conspiracy"},
            {"article_id": "r2", "text": "census report data analysis",
             "creator_id": "creator_0", "subject_ids": ["subject_0"]},
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        return [line["article_id"] for line in lines]

    def test_train_save_writes_checkpoint(self, checkpoint):
        assert (checkpoint / "detector.json").exists()
        assert (checkpoint / "arrays.npz").exists()
        assert (checkpoint / "model.npz").exists()

    def test_infer_emits_response_document(self, checkpoint, tmp_path, capsys):
        import json

        requests = tmp_path / "requests.jsonl"
        ids = self._write_requests(requests)
        code = main(["infer", str(checkpoint), "--articles", str(requests), "--proba"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out.strip())
        assert doc["schema"] == "repro.serve.response/1"
        assert len(doc["model_digest"]) == 16
        assert doc["timing"]["total_ms"] > 0
        assert [p["entity_id"] for p in doc["predictions"]] == ids
        for p in doc["predictions"]:
            assert 0 <= p["class_index"] <= 5
            assert len(p["proba"]) == 6

    def test_serve_batch_streams_response_documents(self, checkpoint, tmp_path, capsys):
        import json

        requests = tmp_path / "stream.jsonl"
        ids = self._write_requests(requests)
        code = main([
            "serve", "batch", str(checkpoint), "--input", str(requests),
            "--max-batch-size", "4", "--max-wait", "0.005",
        ])
        assert code == 0
        captured = capsys.readouterr()
        docs = [json.loads(l) for l in captured.out.strip().splitlines()]
        assert all(d["schema"] == "repro.serve.response/1" for d in docs)
        returned = [p["entity_id"] for d in docs for p in d["predictions"]]
        assert sorted(returned) == sorted(ids)
        assert "serving metrics:" in captured.err
        assert "throughput_rps" in captured.err

    def test_bare_serve_compat_shim(self, checkpoint, tmp_path, capsys):
        import json

        requests = tmp_path / "compat.jsonl"
        ids = self._write_requests(requests)
        code = main(["serve", str(checkpoint), "--input", str(requests)])
        assert code == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        docs = [json.loads(l) for l in captured.out.strip().splitlines()]
        returned = [p["entity_id"] for d in docs for p in d["predictions"]]
        assert sorted(returned) == sorted(ids)

    def test_serve_http_round_trip(self, checkpoint, tmp_path, capsys):
        import json
        import urllib.request

        from repro.serve import REQUEST_SCHEMA, PredictionService

        service = PredictionService(checkpoint, workers=2, shards=2,
                                    max_wait=0.001)
        payload = {
            "schema": REQUEST_SCHEMA,
            "articles": [{"article_id": "h1",
                          "text": "secret rigged hoax conspiracy"}],
        }
        with service:
            request = urllib.request.Request(
                service.url + "/v1/predict",
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"}, method="POST",
            )
            with urllib.request.urlopen(request, timeout=60.0) as reply:
                doc = json.loads(reply.read().decode("utf-8"))
        assert doc["schema"] == "repro.serve.response/1"
        assert doc["predictions"][0]["entity_id"] == "h1"

    def test_serve_http_parser_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "serve", "http", "ckpt", "--workers", "4", "--shards", "2",
            "--queue-depth", "8", "--duration", "0.5",
        ])
        assert args.workers == 4
        assert args.shards == 2
        assert args.queue_depth == 8
        assert args.duration == 0.5


class TestFlameCli:
    @pytest.fixture(scope="class")
    def flame_run(self, tmp_path_factory):
        runs = tmp_path_factory.mktemp("runs")
        svg = runs / "train.svg"
        code = main([
            "train", "--scale", "0.01", "--seed", "3", "--epochs", "2",
            "--explicit-dim", "20", "--max-seq-len", "8",
            "--flame", "--flame-hz", "250", "--flame-svg", str(svg),
            "--runs-dir", str(runs),
        ])
        assert code == 0
        from repro.obs import RunRegistry

        run_id = RunRegistry(runs).list(kind="train")[-1].run_id
        return runs, run_id, svg

    def test_train_flame_saves_profile_artifact(self, flame_run):
        from repro.obs import RunRegistry

        runs, run_id, svg = flame_run
        registry = RunRegistry(runs)
        assert registry.profile_path_for(run_id).exists()
        profile = registry.load_profile(run_id)
        assert profile.samples > 0
        assert profile.meta["kind"] == "train"
        assert "fused_kernels" in profile.meta
        assert svg.read_text().startswith("<svg")

    def test_obs_flame_renders_table(self, flame_run, capsys):
        runs, run_id, _ = flame_run
        code = main(["obs", "flame", run_id, "--runs-dir", str(runs)])
        assert code == 0
        out = capsys.readouterr().out
        assert "sampling profile:" in out
        assert "self s" in out

    def test_obs_flame_json(self, flame_run, capsys):
        import json

        runs, run_id, _ = flame_run
        code = main(["obs", "flame", run_id, "--runs-dir", str(runs),
                     "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.obs.profile/1"
        assert doc["samples"] > 0

    def test_obs_flame_diff_and_svg(self, flame_run, tmp_path, capsys):
        import json

        runs, run_id, _ = flame_run
        svg = tmp_path / "diff.svg"
        code = main([
            "obs", "flame", run_id, "--diff", run_id,
            "--runs-dir", str(runs), "--svg", str(svg), "--json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.obs.profile_diff/1"
        # Self-diff: every per-frame delta is exactly zero.
        assert all(e["delta_seconds"] == 0.0 for e in doc["entries"])
        assert "differential" in svg.read_text()

    def test_obs_flame_missing_ref_errors(self, tmp_path, capsys):
        code = main(["obs", "flame", "no-such-run",
                     "--runs-dir", str(tmp_path)])
        assert code == 1
        assert "no profile" in capsys.readouterr().err

    def test_obs_trace_json_emits_trace_render(self, tmp_path, capsys):
        import json

        from repro.obs import TraceStore, span_record

        tid = "ab" * 16
        store = TraceStore(tmp_path)
        store.add_spans(tid, [
            span_record("serve.request", trace_id=tid, parent_id=None,
                        start=5.0, end=5.2, span_id=1),
        ])
        store.close()
        code = main(["obs", "trace", tid, "--trace-dir", str(tmp_path),
                     "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.obs.trace_render/1"
        assert doc["trace_id"] == tid
        assert doc["spans"][0]["name"] == "serve.request"

    def test_flame_parser_flags(self):
        args = build_parser().parse_args([
            "train", "--flame", "--flame-hz", "50",
            "--flame-svg", "out.svg",
        ])
        assert args.flame is True
        assert args.flame_hz == 50.0
        args = build_parser().parse_args([
            "serve", "http", "ckpt", "--profile-hz", "100",
        ])
        assert args.profile_hz == 100.0


class TestTune:
    def test_parse_grid(self):
        from repro.cli import _parse_grid

        grid = _parse_grid("gdu_hidden=8,16;alpha=0.001,0.01;rnn_cell=gru,cnn")
        assert grid["gdu_hidden"] == [8, 16]
        assert grid["alpha"] == [0.001, 0.01]
        assert grid["rnn_cell"] == ["gru", "cnn"]

    def test_parse_grid_validation(self):
        from repro.cli import _parse_grid

        with pytest.raises(ValueError):
            _parse_grid("")
        with pytest.raises(ValueError):
            _parse_grid("no-equals-here")

    def test_tune_command_runs(self, capsys):
        code = main([
            "tune", "--scale", "0.01", "--seed", "3", "--epochs", "2",
            "--inner-folds", "2", "--grid", "gdu_hidden=8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ranking" in out
        assert "gdu_hidden=8" in out
