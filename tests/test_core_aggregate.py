"""Tests for neighbor aggregation strategies (mean + attention)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.sparse import segment_sum
from repro.core.aggregate import AttentionAggregator, MeanAggregator, make_aggregator

from tests.helpers import finite_difference_check


class TestSegmentSum:
    def test_values(self):
        src = Tensor(np.array([[1.0], [2.0], [4.0]]))
        out = segment_sum(src, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [4.0]])

    def test_empty_segment_zero(self):
        src = Tensor(np.ones((2, 3)))
        out = segment_sum(src, np.array([0, 0]), 3)
        np.testing.assert_allclose(out.data[1:], np.zeros((2, 3)))

    def test_validation(self):
        src = Tensor(np.ones((2, 3)))
        with pytest.raises(ValueError):
            segment_sum(src, np.array([0]), 2)
        with pytest.raises(IndexError):
            segment_sum(src, np.array([0, 5]), 2)

    def test_gradcheck(self, rng):
        src = Tensor(rng.standard_normal((6, 2)), requires_grad=True)
        seg = np.array([0, 2, 1, 1, 0, 2])
        finite_difference_check(lambda s: (segment_sum(s, seg, 3) ** 2).sum(), [src])


class TestMeanAggregator:
    def test_matches_gather_segment_mean(self, rng):
        from repro.autograd.sparse import gather_segment_mean

        agg = MeanAggregator(4)
        src = Tensor(rng.standard_normal((8, 4)))
        gather = rng.integers(0, 8, size=12)
        seg = rng.integers(0, 5, size=12)
        np.testing.assert_allclose(
            agg(src, gather, seg, 5).data,
            gather_segment_mean(src, gather, seg, 5).data,
        )

    def test_no_parameters(self):
        assert MeanAggregator(4).num_parameters() == 0


class TestAttentionAggregator:
    def test_output_shape(self, rng):
        agg = AttentionAggregator(4, rng=rng)
        src = Tensor(rng.standard_normal((8, 4)))
        gather = rng.integers(0, 8, size=12)
        seg = rng.integers(0, 5, size=12)
        assert agg(src, gather, seg, 5).shape == (5, 4)

    def test_weights_form_convex_combination(self, rng):
        """Each output row lies in the convex hull of its neighbors — for a
        single neighbor the output equals that neighbor's row exactly."""
        agg = AttentionAggregator(3, rng=rng)
        src = Tensor(rng.standard_normal((4, 3)))
        out = agg(src, np.array([2]), np.array([0]), 1)
        np.testing.assert_allclose(out.data[0], src.data[2], atol=1e-12)

    def test_empty_edges(self, rng):
        agg = AttentionAggregator(3, rng=rng)
        src = Tensor(rng.standard_normal((4, 3)))
        out = agg(src, np.array([], dtype=int), np.array([], dtype=int), 2)
        np.testing.assert_allclose(out.data, np.zeros((2, 3)))

    def test_empty_segment_rows_zero(self, rng):
        agg = AttentionAggregator(3, rng=rng)
        src = Tensor(rng.standard_normal((4, 3)))
        out = agg(src, np.array([0, 1]), np.array([0, 0]), 3)
        np.testing.assert_allclose(out.data[1:], np.zeros((2, 3)))

    def test_uniform_scores_reduce_to_mean(self, rng):
        """With the attention vector zeroed, weights are uniform == mean."""
        agg = AttentionAggregator(3, rng=rng)
        agg.attn.data[:] = 0.0
        src = Tensor(rng.standard_normal((6, 3)))
        gather = np.array([0, 1, 2, 3])
        seg = np.array([0, 0, 0, 0])
        expected = src.data[:4].mean(axis=0)
        np.testing.assert_allclose(agg(src, gather, seg, 1).data[0], expected)

    def test_gradients_flow_to_attention_and_source(self, rng):
        agg = AttentionAggregator(3, rng=rng)
        src = Tensor(rng.standard_normal((6, 3)), requires_grad=True)
        gather = np.array([0, 1, 2, 3, 4])
        seg = np.array([0, 0, 1, 1, 1])
        (agg(src, gather, seg, 2) ** 2).sum().backward()
        assert agg.attn.grad is not None
        assert src.grad is not None

    def test_gradcheck(self, rng):
        agg = AttentionAggregator(2, rng=rng)
        src = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
        gather = np.array([0, 1, 2, 3])
        seg = np.array([0, 0, 1, 1])
        finite_difference_check(
            lambda s, a: (agg(s, gather, seg, 2) ** 2).sum(),
            [src, agg.attn],
            tol=1e-4,
        )

    def test_temperature_validation(self, rng):
        with pytest.raises(ValueError):
            AttentionAggregator(3, rng=rng, temperature=0)


class TestFactory:
    def test_dispatch(self, rng):
        assert isinstance(make_aggregator("mean", 4), MeanAggregator)
        assert isinstance(make_aggregator("attention", 4, rng), AttentionAggregator)
        with pytest.raises(ValueError):
            make_aggregator("max", 4)

    def test_config_validation(self):
        from repro.core import FakeDetectorConfig

        with pytest.raises(ValueError):
            FakeDetectorConfig(aggregation="max")

    def test_attention_model_end_to_end(self, tiny_dataset, tiny_split):
        from repro.core import FakeDetector, FakeDetectorConfig

        config = FakeDetectorConfig(
            epochs=3, explicit_dim=20, vocab_size=300, max_seq_len=8,
            embed_dim=4, rnn_hidden=6, latent_dim=4, gdu_hidden=8,
            aggregation="attention",
        )
        det = FakeDetector(config).fit(tiny_dataset, tiny_split)
        assert det.record.total[-1] < det.record.total[0]
        # Attention adds exactly one parameter vector per edge family.
        attn_params = [
            name for name, _ in det.model.named_parameters() if "attn" in name
        ]
        assert len(attn_params) == 3
