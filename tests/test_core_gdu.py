"""Tests for the Gated Diffusive Unit — the paper's central contribution."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import GDU

from tests.helpers import finite_difference_check


@pytest.fixture()
def gdu(rng):
    return GDU(input_dim=5, hidden_dim=4, rng=rng)


def make_inputs(rng, batch=3, input_dim=5, hidden_dim=4, requires_grad=False):
    x = Tensor(rng.standard_normal((batch, input_dim)), requires_grad=requires_grad)
    z = Tensor(rng.standard_normal((batch, hidden_dim)), requires_grad=requires_grad)
    t = Tensor(rng.standard_normal((batch, hidden_dim)), requires_grad=requires_grad)
    return x, z, t


class TestForward:
    def test_output_shape(self, gdu, rng):
        x, z, t = make_inputs(rng)
        assert gdu(x, z, t).shape == (3, 4)

    def test_output_bounded(self, gdu, rng):
        # h is a convex-ish gate mixture of tanh candidates -> |h| <= ~2
        # (sum of four gated tanh terms, gates partition at most mass 1 per
        # (g, r) factorization: g*r + (1-g)*r + g*(1-r) + (1-g)*(1-r) = 1).
        x, z, t = make_inputs(rng, batch=16)
        h = gdu(x, z, t)
        assert np.all(np.abs(h.data) <= 1.0 + 1e-9)

    def test_batch_mismatch_rejected(self, gdu, rng):
        x, z, t = make_inputs(rng)
        bad_z = Tensor(np.zeros((5, 4)))
        with pytest.raises(ValueError):
            gdu(x, bad_z, t)

    def test_zero_state_port(self, gdu, rng):
        """§4.2: an unused port takes the zero default and still works."""
        x, z, _ = make_inputs(rng)
        h = gdu(x, z, gdu.zero_state(3))
        assert h.shape == (3, 4)

    def test_gate_mixture_weights_sum_to_one(self, gdu, rng):
        """The four (g, r) products partition unit mass per entry."""
        x, z, t = make_inputs(rng)
        from repro.autograd import concatenate

        xzt = concatenate([x, z, t], axis=1)
        g = (xzt @ gdu.w_g + gdu.b_g).sigmoid().data
        r = (xzt @ gdu.w_r + gdu.b_r).sigmoid().data
        total = g * r + (1 - g) * r + g * (1 - r) + (1 - g) * (1 - r)
        np.testing.assert_allclose(total, np.ones_like(total))

    def test_forget_gate_zero_suppresses_z(self, rng):
        """With f ≈ 0 the candidate sees z̃ ≈ 0: changing z while forcing
        selection to the z̃-only branch must not change the output."""
        gdu = GDU(input_dim=3, hidden_dim=4, rng=rng)
        gdu.b_f.data[:] = -60.0   # forget gate ≈ 0 everywhere
        gdu.b_g.data[:] = 60.0    # g ≈ 1
        gdu.b_r.data[:] = 60.0    # r ≈ 1 -> only candidate(z̃, t̃) survives
        # Kill gate dependence on inputs so z only enters via z̃.
        gdu.w_g.data[:] = 0.0
        gdu.w_r.data[:] = 0.0
        gdu.w_f.data[:] = 0.0
        gdu.w_e.data[:] = 0.0
        x = Tensor(rng.standard_normal((2, 3)))
        t = Tensor(rng.standard_normal((2, 4)))
        z1 = Tensor(rng.standard_normal((2, 4)))
        z2 = Tensor(rng.standard_normal((2, 4)))
        np.testing.assert_allclose(gdu(x, z1, t).data, gdu(x, z2, t).data, atol=1e-10)

    def test_adjust_gate_zero_suppresses_t(self, rng):
        gdu = GDU(input_dim=3, hidden_dim=4, rng=rng)
        gdu.b_e.data[:] = -60.0   # adjust gate ≈ 0
        gdu.b_g.data[:] = 60.0    # g ≈ 1
        gdu.b_r.data[:] = 60.0    # r ≈ 1 -> candidate(z̃, t̃) only
        gdu.w_g.data[:] = 0.0
        gdu.w_r.data[:] = 0.0
        gdu.w_f.data[:] = 0.0
        gdu.w_e.data[:] = 0.0
        x = Tensor(rng.standard_normal((2, 3)))
        z = Tensor(rng.standard_normal((2, 4)))
        t1 = Tensor(rng.standard_normal((2, 4)))
        t2 = Tensor(rng.standard_normal((2, 4)))
        np.testing.assert_allclose(gdu(x, z, t1).data, gdu(x, z, t2).data, atol=1e-10)


class TestGradients:
    def test_gradcheck_parameters(self, rng):
        gdu = GDU(input_dim=2, hidden_dim=3, rng=rng)
        x, z, t = make_inputs(rng, batch=2, input_dim=2, hidden_dim=3)
        finite_difference_check(
            lambda *p: (gdu(x, z, t) ** 2).sum(), list(gdu.parameters()), tol=1e-4
        )

    def test_gradcheck_inputs(self, rng):
        gdu = GDU(input_dim=2, hidden_dim=3, rng=rng)
        x, z, t = make_inputs(rng, batch=2, input_dim=2, hidden_dim=3, requires_grad=True)
        finite_difference_check(lambda x, z, t: (gdu(x, z, t) ** 2).sum(), [x, z, t], tol=1e-4)

    def test_gradient_flows_to_all_parameters(self, gdu, rng):
        x, z, t = make_inputs(rng)
        (gdu(x, z, t) ** 2).sum().backward()
        for name, p in gdu.named_parameters():
            assert p.grad is not None, f"{name} got no gradient"
            assert np.abs(p.grad).sum() > 0, f"{name} gradient identically zero"


class TestAblations:
    def test_no_forget_gate_passes_z_through(self, rng):
        gdu = GDU(input_dim=3, hidden_dim=4, rng=rng, use_forget_gate=False)
        assert not hasattr(gdu, "w_f")
        x, z, t = make_inputs(rng, input_dim=3)
        assert gdu(x, z, t).shape == (3, 4)

    def test_no_adjust_gate(self, rng):
        gdu = GDU(input_dim=3, hidden_dim=4, rng=rng, use_adjust_gate=False)
        assert not hasattr(gdu, "w_e")
        x, z, t = make_inputs(rng, input_dim=3)
        assert gdu(x, z, t).shape == (3, 4)

    def test_no_selection_gates_single_candidate(self, rng):
        gdu = GDU(input_dim=3, hidden_dim=4, rng=rng, use_selection_gates=False)
        assert not hasattr(gdu, "w_g")
        x, z, t = make_inputs(rng, input_dim=3)
        h = gdu(x, z, t)
        # Output is a plain tanh candidate.
        assert np.all(np.abs(h.data) < 1.0)

    def test_parameter_counts_shrink_with_ablation(self, rng):
        full = GDU(3, 4, rng=np.random.default_rng(0))
        bare = GDU(
            3, 4, rng=np.random.default_rng(0),
            use_forget_gate=False, use_adjust_gate=False, use_selection_gates=False,
        )
        assert bare.num_parameters() < full.num_parameters()
        # Bare GDU = just W_u + b_u.
        concat = 3 + 2 * 4
        assert bare.num_parameters() == concat * 4 + 4

    def test_full_param_count(self, rng):
        gdu = GDU(5, 4, rng=rng)
        concat = 5 + 2 * 4
        # 5 weight matrices (f, e, g, r, u) + 5 biases.
        assert gdu.num_parameters() == 5 * (concat * 4 + 4)
