"""Tests for the Hybrid Feature Learning Unit."""

import numpy as np
import pytest

from repro.core import HFLU


@pytest.fixture()
def hflu(rng):
    return HFLU(vocab_size=30, embed_dim=5, rnn_hidden=7, latent_dim=6, rng=rng)


class TestForward:
    def test_concatenated_dimension(self, hflu, rng):
        explicit = rng.random((4, 10))
        seqs = rng.integers(1, 30, size=(4, 8))
        out = hflu(explicit, seqs)
        assert out.shape == (4, 16)  # 10 explicit + 6 latent

    def test_explicit_half_passes_through_unchanged(self, hflu, rng):
        explicit = rng.random((3, 10))
        seqs = rng.integers(1, 30, size=(3, 8))
        out = hflu(explicit, seqs)
        np.testing.assert_allclose(out.data[:, :10], explicit)

    def test_latent_half_in_sigmoid_range(self, hflu, rng):
        explicit = rng.random((3, 10))
        seqs = rng.integers(1, 30, size=(3, 8))
        out = hflu(explicit, seqs)
        latent = out.data[:, 10:]
        assert np.all((latent >= 0) & (latent <= 1))


class TestAblations:
    def test_explicit_only(self, rng):
        hflu = HFLU(30, 5, 7, 6, rng=rng, use_latent=False)
        explicit = rng.random((2, 9))
        out = hflu(explicit, rng.integers(1, 30, size=(2, 4)))
        assert out.shape == (2, 9)
        np.testing.assert_allclose(out.data, explicit)
        assert hflu.encoder is None

    def test_latent_only(self, rng):
        hflu = HFLU(30, 5, 7, 6, rng=rng, use_explicit=False)
        out = hflu(rng.random((2, 9)), rng.integers(1, 30, size=(2, 4)))
        assert out.shape == (2, 6)

    def test_both_disabled_rejected(self, rng):
        with pytest.raises(ValueError):
            HFLU(30, 5, 7, 6, rng=rng, use_explicit=False, use_latent=False)


class TestTraining:
    def test_gradients_reach_encoder(self, hflu, rng):
        explicit = rng.random((3, 10))
        seqs = rng.integers(1, 30, size=(3, 8))
        (hflu(explicit, seqs) ** 2).sum().backward()
        for name, p in hflu.named_parameters():
            assert p.grad is not None, name

    def test_no_gradient_into_explicit_features(self, hflu, rng):
        """Explicit counts are data, not parameters — nothing to learn."""
        explicit = rng.random((3, 10))
        seqs = rng.integers(1, 30, size=(3, 8))
        out = hflu(explicit, seqs)
        # The concat's explicit part is a fresh constant Tensor.
        assert not out._parents[0].requires_grad
