"""Tests for subgraph views and minibatch (neighbor-sampled) training."""

import numpy as np
import pytest

from repro.core import (
    FakeDetector,
    FakeDetectorConfig,
    build_features,
    build_graph_index,
)
from repro.core.pipeline import subgraph_view


@pytest.fixture(scope="module")
def full(request):
    dataset = request.getfixturevalue("tiny_dataset")
    split = request.getfixturevalue("tiny_split")
    features = build_features(
        dataset, split.articles.train, split.creators.train, split.subjects.train,
        explicit_dim=20, vocab_size=300, max_seq_len=10,
    )
    graph = build_graph_index(dataset, features)
    return dataset, features, graph


class TestSubgraphView:
    def test_article_slice_alignment(self, full):
        dataset, features, graph = full
        rows = np.array([0, 3, 7])
        sub_features, _ = subgraph_view(features, graph, rows)
        assert sub_features.articles.num == 3
        for i, r in enumerate(rows):
            assert sub_features.articles.ids[i] == features.articles.ids[r]
            np.testing.assert_array_equal(
                sub_features.articles.explicit[i], features.articles.explicit[r]
            )
            assert sub_features.articles.labels[i] == features.articles.labels[r]

    def test_contains_exactly_needed_creators(self, full):
        dataset, features, graph = full
        rows = np.array([0, 3, 7])
        sub_features, _ = subgraph_view(features, graph, rows)
        expected = {
            features.creators.ids[graph.article_creator[r]] for r in rows
        }
        assert set(sub_features.creators.ids) == expected

    def test_contains_exactly_needed_subjects(self, full):
        dataset, features, graph = full
        rows = np.array([0, 3, 7])
        sub_features, _ = subgraph_view(features, graph, rows)
        expected = set()
        for r in rows:
            aid = features.articles.ids[r]
            expected.update(dataset.articles[aid].subject_ids)
        assert set(sub_features.subjects.ids) == expected

    def test_subgraph_edges_remap_correctly(self, full):
        dataset, features, graph = full
        rows = np.array([1, 4])
        sub_features, sub_graph = subgraph_view(features, graph, rows)
        # Creator pointers match the dataset.
        for i, r in enumerate(rows):
            aid = features.articles.ids[r]
            creator_id = dataset.articles[aid].creator_id
            assert sub_features.creators.ids[sub_graph.article_creator[i]] == creator_id
        # Subject edges match the dataset.
        from collections import defaultdict

        per_article = defaultdict(set)
        for g, s in zip(sub_graph.article_subject_gather, sub_graph.article_subject_segment):
            per_article[s].add(sub_features.subjects.ids[g])
        for i, r in enumerate(rows):
            aid = features.articles.ids[r]
            assert per_article[i] == set(dataset.articles[aid].subject_ids)

    def test_validation(self, full):
        _, features, graph = full
        with pytest.raises(ValueError):
            subgraph_view(features, graph, np.array([], dtype=int))
        with pytest.raises(ValueError):
            subgraph_view(features, graph, np.array([0, 0]))

    def test_model_forward_on_subgraph(self, full):
        dataset, features, graph = full
        from repro.core import FakeDetectorModel

        rows = np.arange(6)
        sub_features, sub_graph = subgraph_view(features, graph, rows)
        config = FakeDetectorConfig(
            epochs=1, explicit_dim=20, vocab_size=300, max_seq_len=10,
            embed_dim=4, rnn_hidden=6, latent_dim=4, gdu_hidden=8,
        )
        model = FakeDetectorModel(
            config,
            rng=np.random.default_rng(0),
            explicit_dims={
                "article": features.articles.explicit.shape[1],
                "creator": features.creators.explicit.shape[1],
                "subject": features.subjects.explicit.shape[1],
            },
        )
        logits = model(sub_features, sub_graph)
        assert logits["article"].shape == (6, 6)
        assert logits["creator"].shape == (sub_features.creators.num, 6)


class TestMinibatchTraining:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            FakeDetectorConfig(batch_size=0)

    def test_minibatch_loss_decreases(self, tiny_dataset, tiny_split):
        config = FakeDetectorConfig(
            epochs=6, batch_size=16, explicit_dim=20, vocab_size=300,
            max_seq_len=10, embed_dim=4, rnn_hidden=6, latent_dim=4,
            gdu_hidden=8, seed=0,
        )
        det = FakeDetector(config).fit(tiny_dataset, tiny_split)
        assert det.record.total[-1] < det.record.total[0]

    def test_minibatch_predictions_complete(self, tiny_dataset, tiny_split):
        config = FakeDetectorConfig(
            epochs=3, batch_size=16, explicit_dim=20, vocab_size=300,
            max_seq_len=10, embed_dim=4, rnn_hidden=6, latent_dim=4,
            gdu_hidden=8, seed=0,
        )
        det = FakeDetector(config).fit(tiny_dataset, tiny_split)
        preds = det.predict("article")
        assert set(preds) == set(tiny_dataset.articles)

    def test_minibatch_matches_fullbatch_quality(self, small_dataset, small_split):
        """Minibatch training reaches comparable held-out accuracy."""
        base = dict(
            epochs=12, explicit_dim=40, vocab_size=800, max_seq_len=14,
            embed_dim=6, rnn_hidden=8, latent_dim=6, gdu_hidden=12, seed=0,
        )

        def test_accuracy(config):
            det = FakeDetector(config).fit(small_dataset, small_split)
            preds = det.predict("article")
            test = small_split.articles.test
            return float(
                np.mean(
                    [
                        (small_dataset.articles[a].label.binary) == int(preds[a] >= 3)
                        for a in test
                    ]
                )
            )

        full_acc = test_accuracy(FakeDetectorConfig(**base))
        mini_acc = test_accuracy(FakeDetectorConfig(**base, batch_size=64))
        assert mini_acc >= full_acc - 0.1
