"""Tests for the assembled FakeDetector network."""

import numpy as np
import pytest

from repro.core import (
    FakeDetectorConfig,
    FakeDetectorModel,
    build_features,
    build_graph_index,
)


@pytest.fixture(scope="module")
def setup(request):
    dataset = request.getfixturevalue("tiny_dataset")
    split = request.getfixturevalue("tiny_split")
    config = FakeDetectorConfig(
        epochs=2, explicit_dim=20, vocab_size=300, max_seq_len=10,
        embed_dim=5, rnn_hidden=6, latent_dim=5, gdu_hidden=8,
    )
    features = build_features(
        dataset, split.articles.train, split.creators.train, split.subjects.train,
        explicit_dim=config.explicit_dim, vocab_size=config.vocab_size,
        max_seq_len=config.max_seq_len,
    )
    graph = build_graph_index(dataset, features)
    dims = {
        "article": features.articles.explicit.shape[1],
        "creator": features.creators.explicit.shape[1],
        "subject": features.subjects.explicit.shape[1],
    }
    model = FakeDetectorModel(config, rng=np.random.default_rng(0), explicit_dims=dims)
    return config, features, graph, model


class TestForward:
    def test_logit_shapes(self, setup):
        _, features, graph, model = setup
        logits = model(features, graph)
        assert logits["article"].shape == (features.articles.num, 6)
        assert logits["creator"].shape == (features.creators.num, 6)
        assert logits["subject"].shape == (features.subjects.num, 6)

    def test_deterministic_forward(self, setup):
        _, features, graph, model = setup
        a = model(features, graph)["article"].data
        b = model(features, graph)["article"].data
        np.testing.assert_allclose(a, b)

    def test_gradients_reach_every_parameter(self, setup):
        _, features, graph, model = setup
        from repro.autograd import functional as F

        model.zero_grad()
        logits = model(features, graph)
        loss = (
            F.cross_entropy(logits["article"], features.articles.labels)
            + F.cross_entropy(
                logits["creator"],
                np.maximum(features.creators.labels, 0),
            )
            + F.cross_entropy(
                logits["subject"],
                np.maximum(features.subjects.labels, 0),
            )
        )
        loss.backward()
        missing = [
            name for name, p in model.named_parameters() if p.grad is None
        ]
        assert not missing, f"no gradient for {missing}"

    def test_diffusion_changes_output(self, setup):
        """With diffusion off, graph structure must not influence logits."""
        config, features, graph, _ = setup
        import dataclasses

        rng_seed = 5
        with_diff = FakeDetectorModel(
            dataclasses.replace(config, use_diffusion=True),
            rng=np.random.default_rng(rng_seed),
            explicit_dims={
                "article": features.articles.explicit.shape[1],
                "creator": features.creators.explicit.shape[1],
                "subject": features.subjects.explicit.shape[1],
            },
        )
        without_diff = FakeDetectorModel(
            dataclasses.replace(config, use_diffusion=False),
            rng=np.random.default_rng(rng_seed),
            explicit_dims={
                "article": features.articles.explicit.shape[1],
                "creator": features.creators.explicit.shape[1],
                "subject": features.subjects.explicit.shape[1],
            },
        )
        a = with_diff(features, graph)["article"].data
        b = without_diff(features, graph)["article"].data
        assert not np.allclose(a, b)

    def test_single_iteration_creators_isolated_from_creators(self, setup):
        """After 1 round with zero initial states, creator logits depend only
        on creator HFLU features (neighbor inputs are all zero)."""
        config, features, graph, _ = setup
        import dataclasses

        model = FakeDetectorModel(
            dataclasses.replace(config, diffusion_iterations=1),
            rng=np.random.default_rng(3),
            explicit_dims={
                "article": features.articles.explicit.shape[1],
                "creator": features.creators.explicit.shape[1],
                "subject": features.subjects.explicit.shape[1],
            },
        )
        base = model(features, graph)["creator"].data.copy()
        # Perturb article explicit features; with one round, creator GDUs see
        # z = mean of *initial* (zero) article states, so nothing changes.
        perturbed_articles = features.articles.explicit + 10.0
        original = features.articles.explicit
        features.articles.explicit = perturbed_articles
        try:
            after = model(features, graph)["creator"].data
        finally:
            features.articles.explicit = original
        np.testing.assert_allclose(base, after, atol=1e-10)

    def test_two_iterations_propagate_article_info_to_creators(self, setup):
        config, features, graph, _ = setup
        import dataclasses

        model = FakeDetectorModel(
            dataclasses.replace(config, diffusion_iterations=2),
            rng=np.random.default_rng(3),
            explicit_dims={
                "article": features.articles.explicit.shape[1],
                "creator": features.creators.explicit.shape[1],
                "subject": features.subjects.explicit.shape[1],
            },
        )
        base = model(features, graph)["creator"].data.copy()
        original = features.articles.explicit
        features.articles.explicit = original + 10.0
        try:
            after = model(features, graph)["creator"].data
        finally:
            features.articles.explicit = original
        assert not np.allclose(base, after)

    def test_parameter_count_reasonable(self, setup):
        _, _, _, model = setup
        # Sanity bound: thousands, not millions, at test dimensions.
        assert 1_000 < model.num_parameters() < 200_000
