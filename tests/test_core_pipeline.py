"""Tests for the feature pipeline and graph index construction."""

import numpy as np
import pytest

from repro.core import build_features, build_graph_index


@pytest.fixture(scope="module")
def features(request):
    small_dataset = request.getfixturevalue("small_dataset")
    small_split = request.getfixturevalue("small_split")
    return build_features(
        small_dataset,
        small_split.articles.train,
        small_split.creators.train,
        small_split.subjects.train,
        explicit_dim=40,
        vocab_size=800,
        max_seq_len=16,
    )


class TestEntityFeatures:
    def test_alignment(self, features, small_dataset):
        assert features.articles.num == small_dataset.num_articles
        assert features.creators.num == small_dataset.num_creators
        assert features.subjects.num == small_dataset.num_subjects

    def test_ids_sorted_and_indexed(self, features):
        assert features.articles.ids == sorted(features.articles.ids)
        for i, eid in enumerate(features.articles.ids[:10]):
            assert features.articles.index[eid] == i

    def test_explicit_shapes(self, features):
        assert features.articles.explicit.shape == (features.articles.num, 40)
        assert features.articles.explicit.dtype == np.float64

    def test_sequences_shape_and_range(self, features):
        seqs = features.articles.sequences
        assert seqs.shape == (features.articles.num, 16)
        assert seqs.min() >= 0
        assert seqs.max() < len(features.vocab)

    def test_labels_fully_known_for_articles(self, features):
        assert (features.articles.labels >= 0).all()
        assert (features.articles.labels <= 5).all()

    def test_rows_lookup(self, features):
        ids = features.articles.ids[:5]
        rows = features.articles.rows(ids)
        np.testing.assert_array_equal(rows, np.arange(5))

    def test_by_type_dispatch(self, features):
        assert features.by_type("article") is features.articles
        assert features.by_type("creator") is features.creators
        with pytest.raises(ValueError):
            features.by_type("meme")

    def test_word_sets_fit_per_type(self, features):
        words_n = set(features.extractors["article"].words)
        words_u = set(features.extractors["creator"].words)
        # Article statements and creator bios have different vocabularies.
        assert words_n != words_u

    def test_explicit_normalized_rows(self, features):
        norms = np.linalg.norm(features.articles.explicit, axis=1)
        nonzero = norms[norms > 0]
        np.testing.assert_allclose(nonzero, np.ones_like(nonzero))


class TestGraphIndex:
    def test_shapes(self, features, small_dataset, small_split):
        graph = build_graph_index(small_dataset, features)
        n = small_dataset.num_articles
        links = small_dataset.num_article_subject_links
        assert graph.article_creator.shape == (n,)
        assert graph.article_subject_gather.shape == (links,)
        assert graph.article_subject_segment.shape == (links,)
        assert graph.creator_article_gather.shape == (n,)
        assert graph.subject_article_gather.shape == (links,)

    def test_creator_pointers_correct(self, features, small_dataset):
        graph = build_graph_index(small_dataset, features)
        for aid in features.articles.ids[:20]:
            row = features.articles.index[aid]
            creator_row = graph.article_creator[row]
            creator_id = features.creators.ids[creator_row]
            assert small_dataset.articles[aid].creator_id == creator_id

    def test_subject_links_correct(self, features, small_dataset):
        graph = build_graph_index(small_dataset, features)
        # Rebuild each article's subject set from the edge arrays.
        from collections import defaultdict

        per_article = defaultdict(set)
        for s_row, a_row in zip(
            graph.article_subject_gather, graph.article_subject_segment
        ):
            per_article[a_row].add(features.subjects.ids[s_row])
        for aid in features.articles.ids[:20]:
            row = features.articles.index[aid]
            assert per_article[row] == set(small_dataset.articles[aid].subject_ids)

    def test_reverse_edges_are_transposes(self, features, small_dataset):
        graph = build_graph_index(small_dataset, features)
        np.testing.assert_array_equal(
            graph.subject_article_gather, graph.article_subject_segment
        )
        np.testing.assert_array_equal(
            graph.subject_article_segment, graph.article_subject_gather
        )
        np.testing.assert_array_equal(
            graph.creator_article_segment, graph.article_creator
        )
