"""Tests for FakeDetector training and inference."""

import numpy as np
import pytest

from repro.core import FakeDetector, FakeDetectorConfig


@pytest.fixture(scope="module")
def trained(request):
    dataset = request.getfixturevalue("small_dataset")
    split = request.getfixturevalue("small_split")
    config = FakeDetectorConfig(
        epochs=25, explicit_dim=50, vocab_size=1200, max_seq_len=16,
        embed_dim=8, rnn_hidden=12, latent_dim=8, gdu_hidden=16, seed=1,
    )
    return FakeDetector(config).fit(dataset, split)


class TestConfigValidation:
    def test_defaults_valid(self):
        FakeDetectorConfig()

    def test_epoch_validation(self):
        with pytest.raises(ValueError):
            FakeDetectorConfig(epochs=0)

    def test_lr_validation(self):
        with pytest.raises(ValueError):
            FakeDetectorConfig(learning_rate=-0.1)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            FakeDetectorConfig(alpha=-1)

    def test_feature_families_validation(self):
        with pytest.raises(ValueError):
            FakeDetectorConfig(use_explicit_features=False, use_latent_features=False)

    def test_feature_dim(self):
        config = FakeDetectorConfig(explicit_dim=100, latent_dim=16)
        assert config.feature_dim == 116
        explicit_only = FakeDetectorConfig(explicit_dim=100, use_latent_features=False)
        assert explicit_only.feature_dim == 100


class TestTraining:
    def test_loss_decreases(self, trained):
        record = trained.record
        assert len(record.total) == 25
        assert record.total[-1] < record.total[0] * 0.7

    def test_per_type_losses_recorded(self, trained):
        assert len(trained.record.article) == len(trained.record.total)
        assert all(v >= 0 for v in trained.record.article)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            FakeDetector().predict_logits()

    def test_training_is_seeded(self, small_dataset, small_split):
        config = FakeDetectorConfig(
            epochs=3, explicit_dim=30, vocab_size=500, max_seq_len=10,
            embed_dim=5, rnn_hidden=6, latent_dim=5, gdu_hidden=8, seed=9,
        )
        a = FakeDetector(config).fit(small_dataset, small_split)
        b = FakeDetector(config).fit(small_dataset, small_split)
        np.testing.assert_allclose(
            a.predict_logits()["article"], b.predict_logits()["article"]
        )

    def test_early_stopping(self, small_dataset, small_split):
        config = FakeDetectorConfig(
            epochs=50, explicit_dim=30, vocab_size=500, max_seq_len=10,
            embed_dim=5, rnn_hidden=6, latent_dim=5, gdu_hidden=8,
            early_stop_patience=2, learning_rate=1e-7,  # stalls immediately
        )
        det = FakeDetector(config).fit(small_dataset, small_split)
        assert len(det.record.total) < 50


class TestPrediction:
    def test_predictions_cover_all_nodes(self, trained, small_dataset):
        preds = trained.predict("article")
        assert set(preds) == set(small_dataset.articles)
        assert all(0 <= c <= 5 for c in preds.values())

    def test_proba_rows_normalized(self, trained):
        probs = trained.predict_proba("creator")
        for vec in list(probs.values())[:10]:
            assert vec.shape == (6,)
            np.testing.assert_allclose(vec.sum(), 1.0)
            assert (vec >= 0).all()

    def test_argmax_consistent_with_predict(self, trained):
        preds = trained.predict("subject")
        probs = trained.predict_proba("subject")
        for eid in list(preds)[:10]:
            assert preds[eid] == int(np.argmax(probs[eid]))

    def test_beats_majority_on_train_articles(self, trained, small_dataset, small_split):
        """Fitting the training set is the minimum bar for the full model."""
        preds = trained.predict("article")
        train_ids = small_split.articles.train
        y_true = [small_dataset.articles[a].label.class_index for a in train_ids]
        y_pred = [preds[a] for a in train_ids]
        acc = np.mean([t == p for t, p in zip(y_true, y_pred)])
        majority = max(np.bincount(y_true)) / len(y_true)
        assert acc > majority

    def test_binary_test_accuracy_beats_chance(self, trained, small_dataset, small_split):
        preds = trained.predict("article")
        test_ids = small_split.articles.test
        y_true = [small_dataset.articles[a].label.binary for a in test_ids]
        y_pred = [int(preds[a] >= 3) for a in test_ids]
        acc = np.mean([t == p for t, p in zip(y_true, y_pred)])
        assert acc > 0.5
