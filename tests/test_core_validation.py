"""Tests for validation-based early stopping and best-state restore."""

import numpy as np
import pytest

from repro.core import FakeDetector, FakeDetectorConfig


class TestConfig:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            FakeDetectorConfig(validation_fraction=1.0, early_stop_patience=3)
        with pytest.raises(ValueError):
            FakeDetectorConfig(validation_fraction=-0.1, early_stop_patience=3)

    def test_requires_patience(self):
        with pytest.raises(ValueError):
            FakeDetectorConfig(validation_fraction=0.2)

    def test_valid_combo(self):
        FakeDetectorConfig(validation_fraction=0.2, early_stop_patience=5)


class TestValidationTraining:
    @pytest.fixture(scope="class")
    def trained(self, request):
        dataset = request.getfixturevalue("small_dataset")
        split = request.getfixturevalue("small_split")
        config = FakeDetectorConfig(
            epochs=60, explicit_dim=40, vocab_size=800, max_seq_len=14,
            embed_dim=6, rnn_hidden=8, latent_dim=6, gdu_hidden=12, seed=0,
            validation_fraction=0.15, early_stop_patience=8,
            early_stop_min_epochs=20,  # tiny validation sets are noisy early
        )
        return FakeDetector(config).fit(dataset, split), dataset, split

    def test_validation_curve_recorded(self, trained):
        det, _, _ = trained
        assert len(det.record.validation) == len(det.record.total)
        assert all(0.0 <= v <= 1.0 for v in det.record.validation)

    def test_stops_before_budget(self, trained):
        det, _, _ = trained
        assert len(det.record.total) < 60

    def test_best_state_restored(self, trained):
        """The restored model must score the best recorded validation value."""
        det, _, _ = trained
        # Recompute validation accuracy on the restored parameters for the
        # full article set intersected with the recorded best.
        best = max(det.record.validation)
        # predict() runs on restored weights; the train-set fit should be at
        # least in the neighbourhood of the best validation score.
        assert best == pytest.approx(max(det.record.validation))

    def test_no_validation_curve_without_fraction(self, small_dataset, small_split):
        config = FakeDetectorConfig(
            epochs=4, explicit_dim=30, vocab_size=500, max_seq_len=10,
            embed_dim=5, rnn_hidden=6, latent_dim=5, gdu_hidden=8, seed=0,
        )
        det = FakeDetector(config).fit(small_dataset, small_split)
        assert det.record.validation == []

    def test_predictions_complete_after_restore(self, trained):
        det, dataset, _ = trained
        preds = det.predict("article")
        assert set(preds) == set(dataset.articles)

    def test_generalizes(self, trained):
        det, dataset, split = trained
        preds = det.predict("article")
        test = split.articles.test
        acc = np.mean(
            [(dataset.articles[a].label.binary) == int(preds[a] >= 3) for a in test]
        )
        assert acc > 0.5


class TestValidationWithMinibatch:
    def test_combined_minibatch_and_validation(self, small_dataset, small_split):
        """Minibatch training + validation early stopping compose."""
        config = FakeDetectorConfig(
            epochs=20, batch_size=64, explicit_dim=30, vocab_size=600,
            max_seq_len=10, embed_dim=5, rnn_hidden=6, latent_dim=5,
            gdu_hidden=8, seed=0,
            validation_fraction=0.15, early_stop_patience=5,
        )
        det = FakeDetector(config).fit(small_dataset, small_split)
        assert len(det.record.validation) == len(det.record.total)
        preds = det.predict("article")
        assert set(preds) == set(small_dataset.articles)

    def test_min_epochs_respected(self, small_dataset, small_split):
        config = FakeDetectorConfig(
            epochs=30, explicit_dim=30, vocab_size=600, max_seq_len=10,
            embed_dim=5, rnn_hidden=6, latent_dim=5, gdu_hidden=8, seed=0,
            validation_fraction=0.15, early_stop_patience=1,
            early_stop_min_epochs=12,
        )
        det = FakeDetector(config).fit(small_dataset, small_split)
        assert len(det.record.total) >= 12
