"""Tests for the Figure 1 / Table 1 dataset analyses."""

import pytest

from repro.data import Article, Creator, CredibilityLabel, NewsDataset, Subject
from repro.data.analysis import (
    average_articles_per_creator,
    average_subjects_per_article,
    creator_case_study,
    creator_publication_distribution,
    distinctive_words,
    frequent_words,
    label_distribution,
    most_prolific_creator,
    network_properties,
    subject_credibility_table,
)


@pytest.fixture()
def toy_dataset():
    ds = NewsDataset()
    ds.add_creator(Creator("u1", "Alice Adams", "profile one"))
    ds.add_creator(Creator("u2", "Bob Brown", "profile two"))
    ds.add_subject(Subject("s1", "health", "about health"))
    ds.add_subject(Subject("s2", "economy", "about economy"))
    ds.add_article(
        Article("n1", "taxes help growth economy", CredibilityLabel.TRUE, "u1", ["s1", "s2"])
    )
    ds.add_article(
        Article("n2", "obamacare hoax scandal", CredibilityLabel.FALSE, "u1", ["s1"])
    )
    ds.add_article(
        Article("n3", "taxes taxes percent", CredibilityLabel.MOSTLY_TRUE, "u2", ["s2"])
    )
    return ds


class TestNetworkProperties:
    def test_table1_fields(self, toy_dataset):
        props = network_properties(toy_dataset)
        assert props == {
            "articles": 3,
            "creators": 2,
            "subjects": 2,
            "creator_article_links": 3,
            "article_subject_links": 4,
        }

    def test_averages(self, toy_dataset):
        assert average_articles_per_creator(toy_dataset) == pytest.approx(1.5)
        assert average_subjects_per_article(toy_dataset) == pytest.approx(4 / 3)

    def test_averages_empty(self):
        ds = NewsDataset()
        assert average_articles_per_creator(ds) == 0.0
        assert average_subjects_per_article(ds) == 0.0


class TestPublicationDistribution:
    def test_fractions_sum_to_one(self, toy_dataset):
        fit = creator_publication_distribution(toy_dataset)
        assert sum(fit.counts.values()) == pytest.approx(1.0)

    def test_counts_keyed_by_articles(self, toy_dataset):
        fit = creator_publication_distribution(toy_dataset)
        assert fit.counts == {1: 0.5, 2: 0.5}

    def test_most_prolific(self, toy_dataset):
        assert most_prolific_creator(toy_dataset) == ("Alice Adams", 2)

    def test_most_prolific_empty_raises(self):
        with pytest.raises(ValueError):
            most_prolific_creator(NewsDataset())

    def test_single_point_fit_degenerate(self):
        ds = NewsDataset()
        ds.add_creator(Creator("u1", "A", "p"))
        ds.add_subject(Subject("s1", "x", "d"))
        ds.add_article(Article("n1", "t", 6, "u1", ["s1"]))
        fit = creator_publication_distribution(ds)
        assert fit.r_squared == 0.0
        assert not fit.is_power_law_like


class TestFrequentWords:
    def test_partitions_by_binary_label(self, toy_dataset):
        words = frequent_words(toy_dataset, top_k=10)
        true_words = dict(words["true"])
        false_words = dict(words["false"])
        assert true_words["taxes"] == 3
        assert "obamacare" in false_words
        assert "obamacare" not in true_words

    def test_top_k_respected(self, toy_dataset):
        assert len(frequent_words(toy_dataset, top_k=1)["true"]) == 1

    def test_distinctive_words_disjoint(self, small_dataset):
        distinct = distinctive_words(small_dataset, top_k=8)
        assert not (set(distinct["true"]) & set(distinct["false"]))


class TestSubjectTable:
    def test_ordering_and_splits(self, toy_dataset):
        rows = subject_credibility_table(toy_dataset)
        assert rows[0].name == "health"  # 2 articles vs 1
        assert rows[0].true_count == 1 and rows[0].false_count == 1
        assert rows[0].true_fraction == pytest.approx(0.5)

    def test_top_k(self, toy_dataset):
        assert len(subject_credibility_table(toy_dataset, top_k=1)) == 1

    def test_health_vs_economy_bias(self):
        """Fig 1(d): health leans false relative to economy.

        Needs a few hundred health/economy articles for the planted skew to
        dominate sampling noise, so this uses a mid-size corpus.
        """
        from repro.data import generate_dataset

        ds = generate_dataset(scale=0.08, seed=11)
        rows = {r.name: r for r in subject_credibility_table(ds, top_k=5)}
        assert rows["health"].true_fraction < rows["economy"].true_fraction


class TestCaseStudy:
    def test_missing_creators_skipped(self, toy_dataset):
        assert creator_case_study(toy_dataset) == []

    def test_custom_names(self, toy_dataset):
        studies = creator_case_study(toy_dataset, names=["Alice Adams"])
        assert len(studies) == 1
        assert studies[0].total == 2
        # Alice wrote one True and one False article.
        assert studies[0].true_fraction == pytest.approx(0.5)
        assert studies[0].histogram[CredibilityLabel.TRUE] == 1
        assert studies[0].histogram[CredibilityLabel.FALSE] == 1

    def test_histogram_covers_all_labels(self, toy_dataset):
        study = creator_case_study(toy_dataset, names=["Bob Brown"])[0]
        assert set(study.histogram) == set(CredibilityLabel)


class TestLabelDistribution:
    def test_counts(self, toy_dataset):
        dist = label_distribution(toy_dataset)
        assert dist[CredibilityLabel.TRUE] == 1
        assert dist[CredibilityLabel.FALSE] == 1
        assert dist[CredibilityLabel.PANTS_ON_FIRE] == 0
        assert sum(dist.values()) == 3


class TestGraphStatistics:
    def test_toy_values(self, toy_dataset):
        from repro.data.analysis import graph_statistics

        stats = graph_statistics(toy_dataset)
        # 4 subject links + 3 authorship links over 3 articles.
        assert stats.article_degree_mean == pytest.approx(7 / 3)
        assert stats.creator_degree_mean == pytest.approx(1.5)
        assert stats.creator_degree_max == 2
        assert stats.subject_degree_max == 2
        assert stats.bipartite_density_cs == pytest.approx(4 / 6)
        assert stats.isolated_creators == 0
        assert stats.isolated_subjects == 0

    def test_synthetic_corpus_no_isolates(self, small_dataset):
        from repro.data.analysis import graph_statistics

        stats = graph_statistics(small_dataset)
        assert stats.isolated_creators == 0
        assert stats.isolated_subjects == 0
        # Paper ratios: ~3.86 articles/creator, ~3.5+1 links/article.
        assert stats.creator_degree_mean == pytest.approx(3.86, abs=0.2)
        assert stats.article_degree_mean == pytest.approx(4.47, abs=0.2)

    def test_isolated_entities_counted(self):
        from repro.data import Article, Creator, NewsDataset, Subject
        from repro.data.analysis import graph_statistics

        ds = NewsDataset()
        ds.add_creator(Creator("u1", "A", "p"))
        ds.add_creator(Creator("u2", "B", "p"))  # no articles
        ds.add_subject(Subject("s1", "x", "d"))
        ds.add_subject(Subject("s2", "y", "d"))  # no articles
        ds.add_article(Article("n1", "t", 6, "u1", ["s1"]))
        stats = graph_statistics(ds)
        assert stats.isolated_creators == 1
        assert stats.isolated_subjects == 1
