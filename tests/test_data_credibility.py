"""Tests for the credibility score arithmetic of §5.1.1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Article,
    Creator,
    CredibilityLabel,
    NewsDataset,
    Subject,
    assign_derived_labels,
    binary_split_counts,
    derive_entity_label,
    label_to_score,
    score_to_label,
    weighted_credibility_score,
)


class TestScoreMapping:
    def test_label_to_score(self):
        assert label_to_score(CredibilityLabel.TRUE) == 6
        assert label_to_score(CredibilityLabel.PANTS_ON_FIRE) == 1

    def test_score_to_label_exact(self):
        for label in CredibilityLabel:
            assert score_to_label(float(int(label))) is label

    def test_score_to_label_rounds(self):
        assert score_to_label(5.4) is CredibilityLabel.MOSTLY_TRUE
        assert score_to_label(5.6) is CredibilityLabel.TRUE

    def test_half_rounds_up(self):
        assert score_to_label(4.5) is CredibilityLabel.MOSTLY_TRUE

    def test_clamping(self):
        assert score_to_label(0.0) is CredibilityLabel.PANTS_ON_FIRE
        assert score_to_label(99.0) is CredibilityLabel.TRUE

    @given(st.floats(min_value=1.0, max_value=6.0))
    @settings(max_examples=100, deadline=None)
    def test_property_round_trip_within_half(self, score):
        label = score_to_label(score)
        assert abs(int(label) - score) <= 0.5


class TestWeightedScore:
    def test_empty_is_none(self):
        assert weighted_credibility_score([]) is None
        assert derive_entity_label([]) is None

    def test_single_label(self):
        assert weighted_credibility_score([CredibilityLabel.TRUE]) == 6.0

    def test_is_the_mean(self):
        labels = [CredibilityLabel.TRUE, CredibilityLabel.FALSE]  # 6, 2
        assert weighted_credibility_score(labels) == 4.0

    def test_weighted_by_class_fraction(self):
        # 3x True (6) + 1x PoF (1): weighted sum = 6*0.75 + 1*0.25 = 4.75.
        labels = [CredibilityLabel.TRUE] * 3 + [CredibilityLabel.PANTS_ON_FIRE]
        assert weighted_credibility_score(labels) == pytest.approx(4.75)
        assert derive_entity_label(labels) is CredibilityLabel.MOSTLY_TRUE

    @given(st.lists(st.sampled_from(list(CredibilityLabel)), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_property_score_bounded(self, labels):
        score = weighted_credibility_score(labels)
        assert 1.0 <= score <= 6.0

    @given(st.sampled_from(list(CredibilityLabel)), st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_property_homogeneous_bag_recovers_label(self, label, n):
        assert derive_entity_label([label] * n) is label


class TestAssignDerivedLabels:
    def _make(self):
        ds = NewsDataset()
        ds.add_creator(Creator("u1", "Ann", "p"))
        ds.add_creator(Creator("u2", "Bob", "p"))  # no articles
        ds.add_subject(Subject("s1", "health", "d"))
        ds.add_article(Article("n1", "t", CredibilityLabel.TRUE, "u1", ["s1"]))
        ds.add_article(Article("n2", "t", CredibilityLabel.FALSE, "u1", ["s1"]))
        return ds

    def test_creator_gets_mean_label(self):
        ds = self._make()
        assign_derived_labels(ds)
        # (6 + 2) / 2 = 4 -> Half True.
        assert ds.creators["u1"].label is CredibilityLabel.HALF_TRUE

    def test_subject_gets_mean_label(self):
        ds = self._make()
        assign_derived_labels(ds)
        assert ds.subjects["s1"].label is CredibilityLabel.HALF_TRUE

    def test_articleless_creator_unlabeled(self):
        ds = self._make()
        assign_derived_labels(ds)
        assert ds.creators["u2"].label is None

    def test_existing_label_preserved_when_articleless(self):
        ds = self._make()
        ds.creators["u2"].label = CredibilityLabel.TRUE
        assign_derived_labels(ds)
        assert ds.creators["u2"].label is CredibilityLabel.TRUE


class TestBinarySplitCounts:
    def test_counts(self):
        articles = [
            Article("n1", "t", CredibilityLabel.TRUE, "u"),
            Article("n2", "t", CredibilityLabel.HALF_TRUE, "u"),
            Article("n3", "t", CredibilityLabel.PANTS_ON_FIRE, "u"),
        ]
        assert binary_split_counts(articles) == (2, 1)

    def test_empty(self):
        assert binary_split_counts([]) == (0, 0)
