"""Tests for the LIAR TSV converter."""

import pytest

from repro.data import CredibilityLabel
from repro.data.liar import LIAR_LABELS, load_liar

ROW = (
    "{rid}\t{label}\t{statement}\t{subjects}\t{speaker}\t{job}\t{state}\t{party}"
    "\t0\t1\t2\t3\t4\tsome context"
)


def write_tsv(path, rows):
    path.write_text("\n".join(rows) + "\n", encoding="utf-8")


@pytest.fixture()
def liar_file(tmp_path):
    rows = [
        ROW.format(rid="1.json", label="true", statement="taxes fell last year",
                   subjects="taxes,economy", speaker="jane-doe", job="senator",
                   state="ohio", party="democrat"),
        ROW.format(rid="2.json", label="pants-fire", statement="aliens run congress",
                   subjects="conspiracy", speaker="max-blog", job="blogger",
                   state="texas", party="none"),
        ROW.format(rid="3.json", label="half-true", statement="jobs grew somewhat",
                   subjects="economy,jobs", speaker="jane-doe", job="senator",
                   state="ohio", party="democrat"),
    ]
    path = tmp_path / "train.tsv"
    write_tsv(path, rows)
    return path


class TestLabelMap:
    def test_all_six_levels(self):
        assert set(LIAR_LABELS.values()) == set(CredibilityLabel)

    def test_barely_true_maps_to_mostly_false(self):
        # LIAR's "barely-true" is PolitiFact's "Mostly False".
        assert LIAR_LABELS["barely-true"] is CredibilityLabel.MOSTLY_FALSE


class TestLoad:
    def test_counts(self, liar_file):
        dataset, stats = load_liar(liar_file)
        assert stats.loaded == 3
        assert dataset.num_articles == 3
        assert dataset.num_creators == 2   # jane-doe, max-blog
        assert dataset.num_subjects == 4   # taxes, economy, conspiracy, jobs

    def test_article_fields(self, liar_file):
        dataset, _ = load_liar(liar_file)
        article = dataset.articles["liar_1_json"]
        assert article.label is CredibilityLabel.TRUE
        assert article.text == "taxes fell last year"
        assert article.creator_id == "u_jane_doe"
        assert article.subject_ids == ["s_taxes", "s_economy"]

    def test_creator_profile_text(self, liar_file):
        dataset, _ = load_liar(liar_file)
        profile = dataset.creators["u_jane_doe"].profile
        for token in ("jane-doe", "senator", "ohio", "democrat"):
            assert token in profile

    def test_derived_labels(self, liar_file):
        dataset, _ = load_liar(liar_file)
        # jane-doe: True(6) + Half True(4) -> mean 5 -> Mostly True.
        assert dataset.creators["u_jane_doe"].label is CredibilityLabel.MOSTLY_TRUE

    def test_derivation_can_be_disabled(self, liar_file):
        dataset, _ = load_liar(liar_file, derive_entity_labels=False)
        assert dataset.creators["u_jane_doe"].label is None

    def test_multiple_files_merge(self, liar_file, tmp_path):
        other = tmp_path / "valid.tsv"
        write_tsv(other, [
            ROW.format(rid="9.json", label="false", statement="more claims",
                       subjects="economy", speaker="jane-doe", job="senator",
                       state="ohio", party="democrat"),
        ])
        dataset, stats = load_liar(liar_file, other)
        assert stats.loaded == 4
        assert dataset.num_creators == 2  # speaker deduplicated across files

    def test_bad_rows_skipped(self, tmp_path):
        path = tmp_path / "messy.tsv"
        write_tsv(path, [
            "too\tshort",
            ROW.format(rid="1.json", label="not-a-label", statement="x",
                       subjects="a", speaker="s", job="", state="", party=""),
            ROW.format(rid="2.json", label="true", statement="fine",
                       subjects="a", speaker="s", job="", state="", party=""),
            ROW.format(rid="2.json", label="true", statement="duplicate id",
                       subjects="a", speaker="s", job="", state="", party=""),
        ])
        dataset, stats = load_liar(path)
        assert stats.loaded == 1
        assert stats.skipped_short == 1
        assert stats.skipped_label == 1
        assert stats.skipped_duplicate == 1

    def test_empty_subjects_get_uncategorized(self, tmp_path):
        path = tmp_path / "nosubj.tsv"
        write_tsv(path, [
            ROW.format(rid="1.json", label="true", statement="x",
                       subjects="", speaker="s", job="", state="", party=""),
        ])
        dataset, _ = load_liar(path)
        assert "s_uncategorized" in dataset.subjects

    def test_requires_paths(self):
        with pytest.raises(ValueError):
            load_liar()

    def test_trains_end_to_end(self, tmp_path):
        """A LIAR-shaped corpus flows through the whole pipeline."""
        rows = []
        labels = list(LIAR_LABELS)
        for i in range(60):
            rows.append(
                ROW.format(
                    rid=f"{i}.json", label=labels[i % 6],
                    statement=f"statement number {i} about policy and spending",
                    subjects=["economy", "health", "taxes"][i % 3],
                    speaker=f"speaker-{i % 8}", job="job", state="state",
                    party="party",
                )
            )
        path = tmp_path / "big.tsv"
        write_tsv(path, rows)
        dataset, _ = load_liar(path)

        from repro.core import FakeDetector, FakeDetectorConfig
        from repro.graph.sampling import tri_splits

        split = next(
            tri_splits(
                sorted(dataset.articles), sorted(dataset.creators),
                sorted(dataset.subjects), k=3, seed=0,  # only 3 subjects
            )
        )
        config = FakeDetectorConfig(
            epochs=2, explicit_dim=15, vocab_size=200, max_seq_len=8,
            embed_dim=4, rnn_hidden=5, latent_dim=4, gdu_hidden=6, seed=0,
        )
        detector = FakeDetector(config).fit(dataset, split)
        assert detector.predict("article")
