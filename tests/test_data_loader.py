"""Tests for JSON-lines dataset persistence."""

import json

import pytest

from repro.data import (
    Article,
    Creator,
    CredibilityLabel,
    NewsDataset,
    Subject,
    load_dataset,
    save_dataset,
)


def test_roundtrip_small_dataset(small_dataset, tmp_path):
    path = tmp_path / "corpus.jsonl"
    save_dataset(small_dataset, path)
    loaded = load_dataset(path)
    assert loaded.num_articles == small_dataset.num_articles
    assert loaded.num_creators == small_dataset.num_creators
    assert loaded.num_subjects == small_dataset.num_subjects
    for aid, article in small_dataset.articles.items():
        other = loaded.articles[aid]
        assert other.text == article.text
        assert other.label is article.label
        assert other.creator_id == article.creator_id
        assert other.subject_ids == article.subject_ids
    for cid, creator in small_dataset.creators.items():
        assert loaded.creators[cid].label is creator.label
        assert loaded.creators[cid].profile == creator.profile


def test_labels_stored_as_display_names(tmp_path):
    ds = NewsDataset()
    ds.add_creator(Creator("u1", "Ann", "p"))
    ds.add_subject(Subject("s1", "health", "d"))
    ds.add_article(Article("n1", "t", CredibilityLabel.PANTS_ON_FIRE, "u1", ["s1"]))
    path = tmp_path / "c.jsonl"
    save_dataset(ds, path)
    records = [json.loads(line) for line in path.read_text().splitlines()]
    article_record = next(r for r in records if r["kind"] == "article")
    assert article_record["label"] == "Pants on Fire!"


def test_none_labels_roundtrip(tmp_path):
    ds = NewsDataset()
    ds.add_creator(Creator("u1", "Ann", "p"))  # label None
    ds.add_subject(Subject("s1", "health", "d"))
    ds.add_article(Article("n1", "t", CredibilityLabel.TRUE, "u1", ["s1"]))
    path = tmp_path / "c.jsonl"
    save_dataset(ds, path)
    loaded = load_dataset(path, validate=False)
    assert loaded.creators["u1"].label is None


def test_invalid_json_reports_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"kind": "creator"\n')
    with pytest.raises(ValueError, match="bad.jsonl:1"):
        load_dataset(path)


def test_unknown_kind_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"kind": "meme"}) + "\n")
    with pytest.raises(ValueError, match="unknown record kind"):
        load_dataset(path)


def test_blank_lines_skipped(tmp_path):
    ds = NewsDataset()
    ds.add_creator(Creator("u1", "Ann", "p"))
    ds.add_subject(Subject("s1", "health", "d"))
    ds.add_article(Article("n1", "t", CredibilityLabel.TRUE, "u1", ["s1"]))
    path = tmp_path / "c.jsonl"
    save_dataset(ds, path)
    path.write_text(path.read_text() + "\n\n")
    loaded = load_dataset(path)
    assert loaded.num_articles == 1


def test_validation_catches_dangling_links(tmp_path):
    path = tmp_path / "dangling.jsonl"
    lines = [
        json.dumps({"kind": "creator", "creator_id": "u1", "name": "A", "profile": "p", "label": None}),
        json.dumps(
            {
                "kind": "article",
                "article_id": "n1",
                "text": "t",
                "label": "True",
                "creator_id": "u1",
                "subject_ids": ["missing"],
            }
        ),
    ]
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError):
        load_dataset(path)
    loaded = load_dataset(path, validate=False)
    assert loaded.num_articles == 1
