"""Tests for the dataset schema and label scale."""

import pytest

from repro.data import Article, Creator, CredibilityLabel, NewsDataset, Subject
from repro.data.schema import NUM_CLASSES


class TestCredibilityLabel:
    def test_paper_score_mapping(self):
        # §5.1.1: True=6, Mostly True=5, Half True=4, Mostly False=3,
        # False=2, Pants on Fire!=1.
        assert int(CredibilityLabel.TRUE) == 6
        assert int(CredibilityLabel.MOSTLY_TRUE) == 5
        assert int(CredibilityLabel.HALF_TRUE) == 4
        assert int(CredibilityLabel.MOSTLY_FALSE) == 3
        assert int(CredibilityLabel.FALSE) == 2
        assert int(CredibilityLabel.PANTS_ON_FIRE) == 1

    def test_num_classes(self):
        assert NUM_CLASSES == 6

    def test_binary_grouping(self):
        # {True, Mostly True, Half True} positive; rest negative (§5.1.3).
        positives = {
            CredibilityLabel.TRUE,
            CredibilityLabel.MOSTLY_TRUE,
            CredibilityLabel.HALF_TRUE,
        }
        for label in CredibilityLabel:
            assert label.is_true_class == (label in positives)
            assert label.binary == int(label in positives)

    def test_display_names(self):
        assert CredibilityLabel.PANTS_ON_FIRE.display_name == "Pants on Fire!"
        assert CredibilityLabel.MOSTLY_TRUE.display_name == "Mostly True"

    def test_from_display_name(self):
        for label in CredibilityLabel:
            assert CredibilityLabel.from_display_name(label.display_name) is label

    def test_from_display_name_case_insensitive(self):
        assert CredibilityLabel.from_display_name("half true") is CredibilityLabel.HALF_TRUE

    def test_from_display_name_unknown(self):
        with pytest.raises(ValueError):
            CredibilityLabel.from_display_name("Sorta True")

    def test_class_index_roundtrip(self):
        for label in CredibilityLabel:
            assert CredibilityLabel.from_class_index(label.class_index) is label

    def test_class_index_range(self):
        with pytest.raises(ValueError):
            CredibilityLabel.from_class_index(6)
        with pytest.raises(ValueError):
            CredibilityLabel.from_class_index(-1)


class TestEntities:
    def test_article_label_coercion(self):
        article = Article("n1", "text", 6, creator_id="u1")
        assert article.label is CredibilityLabel.TRUE

    def test_creator_optional_label(self):
        creator = Creator("u1", "Ann", "profile")
        assert creator.label is None
        creator2 = Creator("u2", "Bob", "profile", label=3)
        assert creator2.label is CredibilityLabel.MOSTLY_FALSE

    def test_subject_label_coercion(self):
        subject = Subject("s1", "health", "desc", label=4)
        assert subject.label is CredibilityLabel.HALF_TRUE


class TestNewsDataset:
    def _make(self):
        ds = NewsDataset()
        ds.add_creator(Creator("u1", "Ann", "profile"))
        ds.add_subject(Subject("s1", "health", "desc"))
        ds.add_subject(Subject("s2", "economy", "desc"))
        ds.add_article(
            Article("n1", "text", CredibilityLabel.TRUE, "u1", ["s1", "s2"])
        )
        ds.add_article(Article("n2", "text", CredibilityLabel.FALSE, "u1", ["s1"]))
        return ds

    def test_counts(self):
        ds = self._make()
        assert ds.num_articles == 2
        assert ds.num_creators == 1
        assert ds.num_subjects == 2
        assert ds.num_creator_article_links == 2
        assert ds.num_article_subject_links == 3

    def test_duplicate_ids_rejected(self):
        ds = self._make()
        with pytest.raises(ValueError):
            ds.add_article(Article("n1", "x", 1, "u1"))
        with pytest.raises(ValueError):
            ds.add_creator(Creator("u1", "x", "y"))
        with pytest.raises(ValueError):
            ds.add_subject(Subject("s1", "x", "y"))

    def test_grouping(self):
        ds = self._make()
        by_creator = ds.articles_by_creator()
        assert {a.article_id for a in by_creator["u1"]} == {"n1", "n2"}
        by_subject = ds.articles_by_subject()
        assert len(by_subject["s1"]) == 2
        assert len(by_subject["s2"]) == 1

    def test_validate_ok(self):
        self._make().validate()

    def test_validate_dangling_creator(self):
        ds = self._make()
        ds.articles["n1"].creator_id = "ghost"
        with pytest.raises(ValueError, match="unknown creator"):
            ds.validate()

    def test_validate_dangling_subject(self):
        ds = self._make()
        ds.articles["n1"].subject_ids.append("ghost")
        with pytest.raises(ValueError, match="unknown subject"):
            ds.validate()

    def test_validate_duplicate_subject_link(self):
        ds = self._make()
        ds.articles["n1"].subject_ids.append("s1")
        with pytest.raises(ValueError, match="twice"):
            ds.validate()
