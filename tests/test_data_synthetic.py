"""Tests for the calibrated synthetic PolitiFact generator.

These check every statistic the generator claims to reproduce from the
paper's Section 3 (see DESIGN.md §2 for the substitution rationale).
"""

import numpy as np
import pytest

from repro.data import (
    CASE_STUDY_CREATORS,
    PAPER_NUM_ARTICLE_SUBJECT_LINKS,
    PAPER_NUM_ARTICLES,
    PAPER_NUM_CREATORS,
    GeneratorConfig,
    PolitiFactGenerator,
    generate_dataset,
)
from repro.data.analysis import (
    average_articles_per_creator,
    average_subjects_per_article,
    creator_case_study,
    creator_publication_distribution,
    most_prolific_creator,
)


class TestConfig:
    def test_scale_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(scale=0)

    def test_resolved_counts_at_full_scale(self):
        n_articles, n_creators, n_subjects, links = GeneratorConfig(scale=1.0).resolved_counts()
        assert n_articles == PAPER_NUM_ARTICLES
        assert n_creators == PAPER_NUM_CREATORS
        assert n_subjects == 152
        assert links == PAPER_NUM_ARTICLE_SUBJECT_LINKS

    def test_explicit_overrides_win(self):
        config = GeneratorConfig(scale=1.0, num_articles=100, num_creators=10, num_subjects=12)
        n_articles, n_creators, n_subjects, _ = config.resolved_counts()
        assert (n_articles, n_creators, n_subjects) == (100, 10, 12)

    def test_creators_capped_by_articles(self):
        config = GeneratorConfig(num_articles=5, num_creators=50, num_subjects=10)
        _, n_creators, _, _ = config.resolved_counts()
        assert n_creators <= 5

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(creator_weight=-1)


class TestTable1Counts:
    """Table 1 of the paper, scaled."""

    def test_exact_scaled_counts(self, small_dataset):
        config = GeneratorConfig(scale=0.02, seed=11)
        n_articles, n_creators, n_subjects, links = config.resolved_counts()
        assert small_dataset.num_articles == n_articles
        assert small_dataset.num_creators == n_creators
        assert small_dataset.num_subjects == n_subjects
        assert small_dataset.num_article_subject_links == links

    def test_one_creator_per_article(self, small_dataset):
        assert small_dataset.num_creator_article_links == small_dataset.num_articles

    def test_averages_match_paper(self, small_dataset):
        # §3.1: 3.86 articles/creator, ~3.5 subjects/article.
        assert average_articles_per_creator(small_dataset) == pytest.approx(3.86, abs=0.15)
        assert average_subjects_per_article(small_dataset) == pytest.approx(3.47, abs=0.15)

    def test_referential_integrity(self, small_dataset):
        small_dataset.validate()

    def test_every_subject_has_articles(self, small_dataset):
        for subject_id, articles in small_dataset.articles_by_subject().items():
            assert articles, f"subject {subject_id} has no articles"

    def test_every_creator_has_articles(self, small_dataset):
        for creator_id, articles in small_dataset.articles_by_creator().items():
            assert articles, f"creator {creator_id} has no articles"


class TestFigure1a:
    def test_power_law_shape(self):
        # Log-log linearity needs a few hundred creators to be detectable;
        # use a mid-size corpus rather than the tiny session fixture.
        ds = generate_dataset(scale=0.05, seed=11)
        fit = creator_publication_distribution(ds)
        assert fit.is_power_law_like, (
            f"exponent={fit.exponent:.2f}, r2={fit.r_squared:.2f}"
        )

    def test_fraction_decreases_with_count(self, small_dataset):
        """Even at tiny scale, few-article creators dominate many-article ones."""
        fit = creator_publication_distribution(small_dataset)
        counts = fit.counts
        low = sum(frac for k, frac in counts.items() if k <= 3)
        high = sum(frac for k, frac in counts.items() if k > 3)
        assert low > high

    def test_most_creators_publish_few(self, small_dataset):
        by_creator = small_dataset.articles_by_creator()
        few = sum(1 for arts in by_creator.values() if len(arts) < 10)
        assert few / len(by_creator) > 0.7

    def test_obama_most_prolific(self, small_dataset):
        name, _ = most_prolific_creator(small_dataset)
        assert name == "Barack Obama"


class TestFigure1ef:
    def test_case_study_creators_present(self, small_dataset):
        studies = {s.name: s for s in creator_case_study(small_dataset)}
        assert set(studies) == set(CASE_STUDY_CREATORS)

    def test_trump_mostly_false(self, small_dataset):
        studies = {s.name: s for s in creator_case_study(small_dataset)}
        # Paper: ~69% of Trump statements rated false.
        assert studies["Donald Trump"].true_fraction == pytest.approx(0.31, abs=0.08)

    def test_obama_mostly_true(self, small_dataset):
        studies = {s.name: s for s in creator_case_study(small_dataset)}
        assert studies["Barack Obama"].true_fraction == pytest.approx(0.75, abs=0.08)

    def test_clinton_mostly_true(self, small_dataset):
        studies = {s.name: s for s in creator_case_study(small_dataset)}
        assert studies["Hillary Clinton"].true_fraction == pytest.approx(0.73, abs=0.10)

    def test_exact_histograms_at_full_counts(self):
        """With scale=1 article counts the case-study histograms are exact."""
        config = GeneratorConfig(
            num_articles=3000, num_creators=100, num_subjects=20, seed=5
        )
        ds = PolitiFactGenerator(config).generate()
        studies = {s.name: s for s in creator_case_study(ds)}
        scale = 3000 / PAPER_NUM_ARTICLES
        for name, paper_hist in CASE_STUDY_CREATORS.items():
            expected_total = sum(max(0, round(c * scale)) for c in paper_hist)
            assert studies[name].total == max(1, expected_total)

    def test_case_studies_can_be_disabled(self):
        config = GeneratorConfig(
            num_articles=80, num_creators=15, num_subjects=10, seed=1,
            include_case_studies=False,
        )
        ds = PolitiFactGenerator(config).generate()
        names = {c.name for c in ds.creators.values()}
        assert not (names & set(CASE_STUDY_CREATORS))


class TestSignals:
    def test_labels_cover_both_binary_groups(self, small_dataset):
        binaries = {a.label.binary for a in small_dataset.articles.values()}
        assert binaries == {0, 1}

    def test_labels_cover_most_classes(self, small_dataset):
        classes = {a.label for a in small_dataset.articles.values()}
        assert len(classes) >= 5

    def test_text_signal_exists(self, small_dataset):
        """True articles use true-leaning words more often than false ones."""
        from repro.data.wordpools import TRUE_LEANING_WORDS

        true_pool = set(TRUE_LEANING_WORDS)

        def pool_rate(articles):
            hits = total = 0
            for a in articles:
                tokens = a.text.split()
                hits += sum(1 for t in tokens if t in true_pool)
                total += len(tokens)
            return hits / total

        arts = list(small_dataset.articles.values())
        rate_true = pool_rate([a for a in arts if a.label.is_true_class])
        rate_false = pool_rate([a for a in arts if not a.label.is_true_class])
        assert rate_true > rate_false * 1.15

    def test_zero_signal_strength_removes_text_signal(self):
        config = GeneratorConfig(
            num_articles=400, num_creators=60, num_subjects=12, seed=2,
            text_signal_strength=0.0, include_case_studies=False,
        )
        ds = PolitiFactGenerator(config).generate()
        from repro.data.wordpools import TRUE_LEANING_WORDS

        true_pool = set(TRUE_LEANING_WORDS)

        def pool_rate(articles):
            hits = total = 0
            for a in articles:
                tokens = a.text.split()
                hits += sum(1 for t in tokens if t in true_pool)
                total += len(tokens)
            return hits / max(1, total)

        arts = list(ds.articles.values())
        rate_true = pool_rate([a for a in arts if a.label.is_true_class])
        rate_false = pool_rate([a for a in arts if not a.label.is_true_class])
        assert abs(rate_true - rate_false) < 0.05

    def test_creator_homophily(self, small_dataset):
        """Articles of one creator should share labels more than random pairs."""
        by_creator = small_dataset.articles_by_creator()
        same = []
        for articles in by_creator.values():
            if len(articles) >= 2:
                binaries = [a.label.binary for a in articles]
                mean = np.mean(binaries)
                same.append(mean * mean + (1 - mean) * (1 - mean))
        overall = np.mean([a.label.binary for a in small_dataset.articles.values()])
        baseline = overall ** 2 + (1 - overall) ** 2
        assert np.mean(same) > baseline + 0.05


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        a = generate_dataset(scale=0.01, seed=42)
        b = generate_dataset(scale=0.01, seed=42)
        assert [x.text for x in a.articles.values()] == [
            x.text for x in b.articles.values()
        ]
        assert [x.label for x in a.articles.values()] == [
            x.label for x in b.articles.values()
        ]

    def test_different_seed_different_corpus(self):
        a = generate_dataset(scale=0.01, seed=1)
        b = generate_dataset(scale=0.01, seed=2)
        assert [x.text for x in a.articles.values()] != [
            x.text for x in b.articles.values()
        ]
