"""Tests for the error-analysis toolkit."""

import numpy as np
import pytest

from repro.data import Article, Creator, CredibilityLabel, NewsDataset, Subject
from repro.experiments import (
    error_report,
    errors_by_creator,
    errors_by_subject,
    hardest_articles,
    render_confusion,
)


@pytest.fixture()
def toy():
    ds = NewsDataset()
    ds.add_creator(Creator("u1", "Reliable Rita", "p"))
    ds.add_creator(Creator("u2", "Fibbing Fred", "p"))
    ds.add_subject(Subject("s1", "health", "d"))
    ds.add_subject(Subject("s2", "economy", "d"))
    specs = [
        ("n1", CredibilityLabel.TRUE, "u1", ["s1"]),
        ("n2", CredibilityLabel.MOSTLY_TRUE, "u1", ["s2"]),
        ("n3", CredibilityLabel.FALSE, "u2", ["s1"]),
        ("n4", CredibilityLabel.PANTS_ON_FIRE, "u2", ["s1", "s2"]),
    ]
    for aid, label, cid, sids in specs:
        ds.add_article(Article(aid, f"text of {aid}", label, cid, sids))
    # Predictions: n1, n2 correct group; n3, n4 predicted credible (wrong).
    predictions = {"n1": 5, "n2": 4, "n3": 4, "n4": 5}
    probabilities = {
        "n1": _one_hot(5, 0.9),
        "n2": _one_hot(4, 0.6),
        "n3": _one_hot(4, 0.95),
        "n4": _one_hot(5, 0.7),
    }
    return ds, predictions, probabilities


def _one_hot(index, confidence):
    probs = np.full(6, (1 - confidence) / 5)
    probs[index] = confidence
    return probs


class TestConfusion:
    def test_labels_rendered(self):
        out = render_confusion([0, 5], [0, 5])
        assert "Pants on Fire!" in out
        assert "rows = truth" in out

    def test_diagonal_counts(self):
        out = render_confusion([0, 0, 1], [0, 0, 1], num_classes=2)
        assert "2" in out and "1" in out


class TestHardestArticles:
    def test_correct_predictions_excluded(self, toy):
        ds, _, probs = toy
        hard = hardest_articles(ds, probs, ["n1", "n2", "n3", "n4"])
        ids = {e.article_id for e in hard}
        # n1 prediction 5 != truth 5? truth TRUE = class 5 -> correct, excluded.
        assert "n1" not in ids

    def test_sorted_by_confidence(self, toy):
        ds, _, probs = toy
        hard = hardest_articles(ds, probs, ["n1", "n2", "n3", "n4"])
        confidences = [e.confidence for e in hard]
        assert confidences == sorted(confidences, reverse=True)
        assert hard[0].article_id == "n3"  # 0.95 confident, wrong

    def test_top_k(self, toy):
        ds, _, probs = toy
        assert len(hardest_articles(ds, probs, ["n1", "n2", "n3", "n4"], top_k=1)) == 1

    def test_str_mentions_labels(self, toy):
        ds, _, probs = toy
        hard = hardest_articles(ds, probs, ["n3"])
        assert "Half True" in str(hard[0]) or "Mostly True" in str(hard[0])


class TestGroupErrors:
    def test_creator_error_rates(self, toy):
        ds, preds, _ = toy
        rows = errors_by_creator(ds, preds, ["n1", "n2", "n3", "n4"], min_articles=1)
        by_name = {r.name: r for r in rows}
        assert by_name["Fibbing Fred"].error_rate == 1.0  # both misclassified
        assert by_name["Reliable Rita"].error_rate == 0.0

    def test_worst_first(self, toy):
        ds, preds, _ = toy
        rows = errors_by_creator(ds, preds, ["n1", "n2", "n3", "n4"], min_articles=1)
        assert rows[0].name == "Fibbing Fred"

    def test_subject_grouping_counts_multi_membership(self, toy):
        ds, preds, _ = toy
        rows = errors_by_subject(ds, preds, ["n1", "n2", "n3", "n4"], min_articles=1)
        by_name = {r.name: r for r in rows}
        assert by_name["health"].total == 3   # n1, n3, n4
        assert by_name["economy"].total == 2  # n2, n4

    def test_min_articles_filters(self, toy):
        ds, preds, _ = toy
        rows = errors_by_creator(ds, preds, ["n1"], min_articles=2)
        assert rows == []


class TestFullReport:
    def test_sections_present(self, toy):
        ds, preds, probs = toy
        report = error_report(ds, preds, probs, ["n1", "n2", "n3", "n4"])
        for marker in ("Confusion matrix", "confidently wrong", "Worst creators",
                       "Worst subjects", "Fibbing Fred"):
            assert marker in report

    def test_on_trained_model(self, small_dataset, small_split):
        from repro.core import FakeDetector, FakeDetectorConfig

        config = FakeDetectorConfig(
            epochs=8, explicit_dim=30, vocab_size=600, max_seq_len=10,
            embed_dim=5, rnn_hidden=6, latent_dim=5, gdu_hidden=8, seed=0,
        )
        det = FakeDetector(config).fit(small_dataset, small_split)
        report = error_report(
            small_dataset,
            det.predict("article"),
            det.predict_proba("article"),
            small_split.articles.test,
        )
        assert "Confusion matrix" in report
