"""Tests for the experiment harness, registry and figure renderers."""

import numpy as np
import pytest

from repro.baselines import MajorityBaseline
from repro.experiments import (
    PAPER_THETAS,
    check_paper_claims,
    default_methods,
    evaluate_predictions,
    figure1,
    figure4,
    figure5,
    render_claims,
    run_sweep,
    table1,
)
from repro.experiments.harness import SweepResult


class TestRegistry:
    def test_all_six_methods(self):
        methods = default_methods()
        assert set(methods) == {"FakeDetector", "lp", "deepwalk", "line", "svm", "rnn"}

    def test_factories_produce_fresh_models(self):
        methods = default_methods()
        a = methods["svm"](0)
        b = methods["svm"](0)
        assert a is not b

    def test_only_filter(self):
        methods = default_methods(only=["svm", "lp"])
        assert set(methods) == {"svm", "lp"}

    def test_unknown_method_rejected(self):
        with pytest.raises(KeyError):
            default_methods(only=["bert"])

    def test_paper_thetas(self):
        assert PAPER_THETAS == (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


class TestEvaluatePredictions:
    def test_perfect_predictions(self, tiny_dataset, tiny_split):
        predictions = {
            "article": {
                a: tiny_dataset.articles[a].label.class_index
                for a in tiny_dataset.articles
            },
            "creator": {
                c: (tiny_dataset.creators[c].label.class_index
                    if tiny_dataset.creators[c].label else 0)
                for c in tiny_dataset.creators
            },
            "subject": {
                s: (tiny_dataset.subjects[s].label.class_index
                    if tiny_dataset.subjects[s].label else 0)
                for s in tiny_dataset.subjects
            },
        }
        results = evaluate_predictions(tiny_dataset, tiny_split, predictions)
        assert results["article"].binary.accuracy == 1.0
        assert results["article"].multi.accuracy == 1.0

    def test_binary_grouping_rule(self, tiny_dataset, tiny_split):
        """Predicting Half True (index 3) for everything is binary-positive."""
        predictions = {
            kind: {eid: 3 for eid in store}
            for kind, store in (
                ("article", tiny_dataset.articles),
                ("creator", tiny_dataset.creators),
                ("subject", tiny_dataset.subjects),
            )
        }
        results = evaluate_predictions(tiny_dataset, tiny_split, predictions)
        assert results["article"].binary.recall == 1.0  # everything positive

    def test_counts_test_nodes_only(self, tiny_dataset, tiny_split):
        predictions = {
            kind: {eid: 0 for eid in store}
            for kind, store in (
                ("article", tiny_dataset.articles),
                ("creator", tiny_dataset.creators),
                ("subject", tiny_dataset.subjects),
            )
        }
        results = evaluate_predictions(tiny_dataset, tiny_split, predictions)
        assert results["article"].num_test == len(tiny_split.articles.test)


@pytest.fixture(scope="module")
def mini_sweep(request):
    """A real (tiny) sweep using two cheap methods."""
    dataset = request.getfixturevalue("tiny_dataset")
    methods = {
        "FakeDetector": default_methods(fast=True)["FakeDetector"],
        "lp": lambda seed: MajorityBaseline(),  # stand-in: cheap, deterministic
    }
    # Shrink FakeDetector further for test speed.
    from repro.baselines import FakeDetectorMethod
    from repro.core import FakeDetectorConfig

    methods["FakeDetector"] = lambda seed: FakeDetectorMethod(
        FakeDetectorConfig(
            epochs=5, explicit_dim=20, vocab_size=300, max_seq_len=8,
            embed_dim=4, rnn_hidden=6, latent_dim=4, gdu_hidden=8, seed=seed,
        )
    )
    return run_sweep(dataset, methods, thetas=(0.5, 1.0), folds=2, k=5, seed=0)


class TestRunSweep:
    def test_structure(self, mini_sweep):
        assert mini_sweep.methods == ["FakeDetector", "lp"]
        assert mini_sweep.thetas == [0.5, 1.0]
        assert mini_sweep.folds == 2

    def test_cells_populated(self, mini_sweep):
        for method in mini_sweep.methods:
            for theta in mini_sweep.thetas:
                cells = mini_sweep.cells[method]["article"][theta]
                assert len(cells) == 2  # one per fold

    def test_series_length(self, mini_sweep):
        series = mini_sweep.series("FakeDetector", "article", "accuracy", "binary")
        assert len(series) == 2
        assert all(0.0 <= v <= 1.0 for v in series)

    def test_mean_metric_consistent_with_series(self, mini_sweep):
        series = mini_sweep.series("lp", "article", "f1", "binary")
        assert mini_sweep.mean_metric("lp", "article", "f1", "binary") == pytest.approx(
            float(np.mean(series))
        )

    def test_best_method_returns_member(self, mini_sweep):
        assert mini_sweep.best_method("article", "accuracy") in mini_sweep.methods

    def test_train_seconds_recorded(self, mini_sweep):
        cell = mini_sweep.cells["FakeDetector"]["article"][0.5][0]
        assert cell.train_seconds > 0


class TestRenderers:
    def test_figure4_contains_all_panels(self, mini_sweep):
        text = figure4(mini_sweep)
        for letter, label in zip("abcdefghijkl", range(12)):
            assert f"Figure 4({letter})" in text
        assert "FakeDetector" in text
        assert "θ=0.5" in text

    def test_figure5_macro_metrics(self, mini_sweep):
        text = figure5(mini_sweep)
        assert "Macro F1" in text
        assert "Multi-Class" in text

    def test_table1(self, tiny_dataset):
        text = table1(tiny_dataset)
        assert "articles" in text
        assert str(tiny_dataset.num_articles) in text
        assert str(tiny_dataset.num_article_subject_links) in text

    def test_figure1_sections(self, small_dataset):
        text = figure1(small_dataset)
        for marker in (
            "Figure 1(a)", "Figure 1(b)", "Figure 1(c)", "Figure 1(d)",
            "Figure 1(e)/(f)", "Barack Obama",
        ):
            assert marker in text

    def test_claims_structure(self, mini_sweep):
        checks = check_paper_claims(mini_sweep)
        assert len(checks) >= 10
        rendered = render_claims(checks)
        assert "PASS" in rendered or "MISS" in rendered

    def test_claims_without_fakedetector(self, mini_sweep):
        crippled = SweepResult(
            methods=["lp"], thetas=mini_sweep.thetas, folds=1,
            cells={"lp": mini_sweep.cells["lp"]},
        )
        checks = check_paper_claims(crippled)
        assert len(checks) == 1 and not checks[0].passed
