"""Tests for sweep persistence (JSON) and CSV export, plus the report."""

import csv

import numpy as np
import pytest

from repro.baselines import MajorityBaseline
from repro.experiments import load_sweep, run_sweep, save_sweep, sweep_to_csv
from repro.metrics import classification_report


@pytest.fixture(scope="module")
def sweep(request):
    dataset = request.getfixturevalue("tiny_dataset")
    methods = {"majority": lambda seed: MajorityBaseline()}
    return run_sweep(dataset, methods, thetas=(0.5, 1.0), folds=2, k=5, seed=0)


class TestSweepRoundTrip:
    def test_json_roundtrip(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        loaded = load_sweep(path)
        assert loaded.methods == sweep.methods
        assert loaded.thetas == sweep.thetas
        assert loaded.folds == sweep.folds
        for kind in ("article", "creator", "subject"):
            for metric in ("accuracy", "f1"):
                np.testing.assert_allclose(
                    loaded.series("majority", kind, metric, "binary"),
                    sweep.series("majority", kind, metric, "binary"),
                )

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 99}')
        with pytest.raises(ValueError):
            load_sweep(path)

    def test_loaded_result_renders(self, sweep, tmp_path):
        from repro.experiments import figure4

        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        rendered = figure4(load_sweep(path))
        assert "Figure 4(a)" in rendered


class TestCsvExport:
    def test_row_count_and_columns(self, sweep, tmp_path):
        path = tmp_path / "sweep.csv"
        rows = sweep_to_csv(sweep, path)
        with path.open() as fh:
            records = list(csv.DictReader(fh))
        assert len(records) == rows
        # methods(1) x kinds(3) x thetas(2) x folds(2) x problems(2) x metrics(4)
        assert rows == 1 * 3 * 2 * 2 * 2 * 4
        assert set(records[0]) == {
            "method", "kind", "theta", "fold", "problem", "metric", "value",
        }

    def test_values_match_cells(self, sweep, tmp_path):
        path = tmp_path / "sweep.csv"
        sweep_to_csv(sweep, path)
        with path.open() as fh:
            records = list(csv.DictReader(fh))
        sample = next(
            r for r in records
            if r["kind"] == "article" and r["problem"] == "binary"
            and r["metric"] == "accuracy" and r["fold"] == "0"
            and float(r["theta"]) == 0.5
        )
        cell = sweep.cells["majority"]["article"][0.5][0]
        assert float(sample["value"]) == pytest.approx(cell.binary.accuracy)


class TestClassificationReport:
    def test_six_class_names_default(self):
        y = [0, 1, 2, 3, 4, 5]
        report = classification_report(y, y, num_classes=6)
        assert "Pants on Fire!" in report
        assert "Mostly True" in report
        assert "accuracy" in report

    def test_perfect_prediction_scores(self):
        y = [0, 1, 0, 1]
        report = classification_report(y, y)
        assert "1.000" in report

    def test_custom_names(self):
        report = classification_report([0, 1], [0, 1], class_names=["fake", "real"])
        assert "fake" in report and "real" in report

    def test_name_length_validation(self):
        with pytest.raises(ValueError):
            classification_report([0, 1], [0, 1], class_names=["only-one"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            classification_report([], [])

    def test_support_column(self):
        report = classification_report([0, 0, 1], [0, 0, 1])
        lines = report.splitlines()
        assert any(line.strip().endswith("2") for line in lines)  # support of class 0
