"""Tests for the method registries and timing renderer."""

import pytest

from repro.baselines import GCNBaseline, Node2VecBaseline
from repro.experiments import (
    PAPER_METHOD_ORDER,
    default_methods,
    extended_methods,
    render_timings,
)


class TestRegistries:
    def test_paper_order_matches_default_methods(self):
        assert set(PAPER_METHOD_ORDER) == set(default_methods())

    def test_extended_superset(self):
        extended = extended_methods()
        assert set(default_methods()) < set(extended)
        assert isinstance(extended["node2vec"](0), Node2VecBaseline)
        assert isinstance(extended["gcn"](0), GCNBaseline)

    def test_slow_variants_exist(self):
        for registry in (default_methods(fast=False), extended_methods(fast=False)):
            assert "FakeDetector" in registry

    def test_factories_respect_seed(self):
        factory = default_methods()["deepwalk"]
        assert factory(7).seed == 7


class TestRenderTimings:
    def test_lists_every_method(self, tiny_dataset):
        from repro.baselines import MajorityBaseline
        from repro.experiments import run_sweep

        result = run_sweep(
            tiny_dataset,
            {"majority": lambda seed: MajorityBaseline()},
            thetas=(1.0,),
            folds=1,
            k=5,
            seed=0,
        )
        rendered = render_timings(result)
        assert "majority" in rendered
        assert "s" in rendered
