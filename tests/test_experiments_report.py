"""Tests for the one-call reproduction report."""

import pytest

from repro.baselines import MajorityBaseline
from repro.experiments import generate_full_report, load_sweep, run_sweep


@pytest.fixture(scope="module")
def mini_sweep(request):
    dataset = request.getfixturevalue("tiny_dataset")
    return run_sweep(
        dataset,
        {"majority": lambda seed: MajorityBaseline()},
        thetas=(1.0,),
        folds=1,
        k=5,
        seed=0,
    )


class TestGenerateFullReport:
    def test_writes_every_artifact(self, tiny_dataset, mini_sweep, tmp_path):
        paths = generate_full_report(
            tiny_dataset, tmp_path / "report", sweep=mini_sweep
        )
        for attr in (
            "table1", "figure1", "figure4", "figure5", "claims",
            "sweep_json", "sweep_csv", "summary",
        ):
            path = getattr(paths, attr)
            assert path.exists(), attr
            assert path.stat().st_size > 0, attr

    def test_summary_contents(self, tiny_dataset, mini_sweep, tmp_path):
        paths = generate_full_report(
            tiny_dataset, tmp_path / "report", sweep=mini_sweep
        )
        summary = paths.summary.read_text()
        assert "claims passed" in summary
        assert str(tiny_dataset.num_articles) in summary

    def test_archived_sweep_reloads(self, tiny_dataset, mini_sweep, tmp_path):
        paths = generate_full_report(
            tiny_dataset, tmp_path / "report", sweep=mini_sweep
        )
        loaded = load_sweep(paths.sweep_json)
        assert loaded.methods == mini_sweep.methods

    def test_creates_directory(self, tiny_dataset, mini_sweep, tmp_path):
        target = tmp_path / "deep" / "nested" / "dir"
        generate_full_report(tiny_dataset, target, sweep=mini_sweep)
        assert target.is_dir()


class TestReportCli:
    def test_report_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report"
        code = main([
            "report", str(out), "--scale", "0.01", "--seed", "3",
            "--thetas", "1.0",
        ])
        assert code == 0
        assert (out / "SUMMARY.txt").exists()
        assert "artifacts written" in capsys.readouterr().out
