"""Tests for the hyperparameter grid search."""

import dataclasses

import pytest

from repro.core import FakeDetectorConfig
from repro.experiments.tuning import TrialResult, best_config, expand_grid, grid_search


class TestExpandGrid:
    def test_empty_grid(self):
        assert expand_grid({}) == [{}]

    def test_single_axis(self):
        combos = expand_grid({"gdu_hidden": [8, 16]})
        assert combos == [{"gdu_hidden": 8}, {"gdu_hidden": 16}]

    def test_cartesian_product(self):
        combos = expand_grid({"a": [1, 2], "b": [10, 20, 30]})
        assert len(combos) == 6
        assert {"a": 2, "b": 30} in combos

    def test_deterministic_key_order(self):
        a = expand_grid({"b": [1], "a": [2]})
        b = expand_grid({"a": [2], "b": [1]})
        assert a == b


class TestTrialResult:
    def test_aggregates(self):
        trial = TrialResult(overrides={"x": 1}, scores=[0.5, 0.7], seconds=1.0)
        assert trial.mean_score == pytest.approx(0.6)
        assert trial.std_score == pytest.approx(0.1)
        assert "x=1" in str(trial)


class TestBestConfig:
    def test_applies_winner(self):
        trials = [
            TrialResult({"gdu_hidden": 8}, [0.5], 1.0),
            TrialResult({"gdu_hidden": 16}, [0.8], 1.0),
        ]
        config = best_config(trials)
        assert config.gdu_hidden == 16

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            best_config([])


class TestGridSearch:
    def test_runs_and_ranks(self, tiny_dataset, tiny_split):
        base = FakeDetectorConfig(
            epochs=3, explicit_dim=20, vocab_size=300, max_seq_len=8,
            embed_dim=4, rnn_hidden=6, latent_dim=4, gdu_hidden=8, seed=0,
        )
        trials = grid_search(
            tiny_dataset, tiny_split,
            grid={"diffusion_iterations": [1, 2]},
            base_config=base, inner_folds=2, seed=0,
        )
        assert len(trials) == 2
        assert trials[0].mean_score >= trials[1].mean_score
        for trial in trials:
            assert len(trial.scores) == 2
            assert all(0 <= s <= 1 for s in trial.scores)
            assert trial.seconds > 0

    def test_test_fold_untouched(self, tiny_dataset, tiny_split):
        """Inner CV only re-cuts the outer training articles."""
        base = FakeDetectorConfig(
            epochs=2, explicit_dim=20, vocab_size=300, max_seq_len=8,
            embed_dim=4, rnn_hidden=6, latent_dim=4, gdu_hidden=8, seed=0,
        )
        import numpy as np

        rng = np.random.default_rng(0)
        from repro.graph.sampling import k_fold_splits

        inner = k_fold_splits(tiny_split.articles.train, 2, rng)
        outer_test = set(tiny_split.articles.test)
        for s in inner:
            assert not (set(s.train) & outer_test)
            assert not (set(s.test) & outer_test)

    def test_inner_folds_validation(self, tiny_dataset, tiny_split):
        with pytest.raises(ValueError):
            grid_search(tiny_dataset, tiny_split, grid={}, inner_folds=1)
