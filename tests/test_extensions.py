"""Tests for the extension features: node2vec, inductive inference."""

import numpy as np
import pytest

from repro.baselines import Node2VecBaseline
from repro.core import FakeDetector, FakeDetectorConfig
from repro.data import Article, CredibilityLabel
from repro.graph import HeterogeneousNetwork, NodeType
from repro.graph.random_walk import node2vec_walk


class TestNode2VecWalk:
    @pytest.fixture()
    def network(self, tiny_dataset):
        return HeterogeneousNetwork.from_dataset(tiny_dataset)

    def test_walk_validity(self, network, rng):
        start = network.nodes(NodeType.ARTICLE)[0]
        walk = node2vec_walk(network, start, 12, rng, p=0.5, q=2.0)
        assert walk[0] == start
        for a, b in zip(walk, walk[1:]):
            assert b in network.neighbors(a)

    def test_parameter_validation(self, network, rng):
        start = network.nodes()[0]
        with pytest.raises(ValueError):
            node2vec_walk(network, start, 0, rng)
        with pytest.raises(ValueError):
            node2vec_walk(network, start, 5, rng, p=0)

    def test_length_one(self, network, rng):
        start = network.nodes()[0]
        assert node2vec_walk(network, start, 1, rng) == [start]

    def test_low_p_increases_backtracking(self, network):
        """p << 1 makes return steps much more likely."""

        def backtrack_rate(p):
            rng = np.random.default_rng(0)
            count = total = 0
            for start in network.nodes(NodeType.ARTICLE)[:30]:
                walk = node2vec_walk(network, start, 10, rng, p=p, q=1.0)
                for i in range(2, len(walk)):
                    total += 1
                    if walk[i] == walk[i - 2]:
                        count += 1
            return count / max(1, total)

        assert backtrack_rate(0.05) > backtrack_rate(20.0)


class TestNode2VecBaseline:
    def test_fit_predict(self, tiny_dataset, tiny_split):
        model = Node2VecBaseline(
            dim=16, num_walks=3, walk_length=10, epochs=2, seed=0, p=0.5, q=2.0
        )
        model.fit(tiny_dataset, tiny_split)
        preds = model.predict("article")
        assert set(preds) == set(tiny_dataset.articles)

    def test_validation(self):
        with pytest.raises(ValueError):
            Node2VecBaseline(p=0)

    def test_name(self):
        assert Node2VecBaseline().name == "node2vec"


class TestInductiveInference:
    @pytest.fixture(scope="class")
    def trained(self, request):
        dataset = request.getfixturevalue("small_dataset")
        split = request.getfixturevalue("small_split")
        config = FakeDetectorConfig(
            epochs=15, explicit_dim=40, vocab_size=800, max_seq_len=14,
            embed_dim=6, rnn_hidden=8, latent_dim=6, gdu_hidden=12, seed=0,
        )
        return FakeDetector(config).fit(dataset, split), dataset

    def test_empty_batch(self, trained):
        detector, _ = trained
        assert detector.predict_new_articles([]) == {}

    def test_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            FakeDetector().predict_new_articles([])

    def test_predictions_in_range(self, trained):
        detector, dataset = trained
        template = next(iter(dataset.articles.values()))
        new = [
            Article(f"new_{i}", "secret rigged hoax conspiracy scandal",
                    CredibilityLabel.FALSE, template.creator_id, template.subject_ids)
            for i in range(3)
        ]
        preds = detector.predict_new_articles(new)
        assert set(preds) == {"new_0", "new_1", "new_2"}
        assert all(0 <= v <= 5 for v in preds.values())

    def test_duplicate_ids_rejected(self, trained):
        detector, dataset = trained
        template = next(iter(dataset.articles.values()))
        dup = Article("dup", "text", CredibilityLabel.TRUE,
                      template.creator_id, template.subject_ids)
        with pytest.raises(ValueError):
            detector.predict_new_articles([dup, dup])

    def test_unknown_creator_and_subjects_fall_back_to_zero(self, trained):
        detector, _ = trained
        orphan = Article("orphan", "budget report data analysis percent",
                         CredibilityLabel.TRUE, "ghost_creator", ["ghost_subject"])
        preds = detector.predict_new_articles([orphan])
        assert 0 <= preds["orphan"] <= 5

    def test_matches_transductive_for_copied_article(self, trained):
        """A new article identical to a training one (same text and links)
        should get a prediction consistent with the graph signal — we check
        agreement on the binary grouping, which is robust to the one-round
        state difference between inductive and transductive scoring."""
        detector, dataset = trained
        agreements = 0
        sample = list(dataset.articles.values())[:20]
        transductive = detector.predict("article")
        copies = [
            Article(f"copy_{i}", a.text, a.label, a.creator_id, a.subject_ids)
            for i, a in enumerate(sample)
        ]
        inductive = detector.predict_new_articles(copies)
        for i, article in enumerate(sample):
            t = transductive[article.article_id]
            n = inductive[f"copy_{i}"]
            if (t >= 3) == (n >= 3):
                agreements += 1
        assert agreements >= 13  # mostly consistent

    def test_text_signal_moves_prediction(self, trained):
        """Strongly false-flavored text should score lower than strongly
        true-flavored text, holding the graph context fixed."""
        detector, dataset = trained
        template = next(iter(dataset.articles.values()))
        falsey = Article("f", " ".join(["hoax rigged scandal conspiracy secret"] * 3),
                         CredibilityLabel.FALSE, template.creator_id, template.subject_ids)
        truey = Article("t", " ".join(["report data census percent analysis"] * 3),
                        CredibilityLabel.TRUE, template.creator_id, template.subject_ids)
        preds = detector.predict_new_articles([falsey, truey])
        assert preds["t"] >= preds["f"]
