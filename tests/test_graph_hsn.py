"""Tests for the heterogeneous network structure."""

import pytest

from repro.graph import EdgeType, HeterogeneousNetwork, NodeType


@pytest.fixture()
def toy_network():
    net = HeterogeneousNetwork()
    net.add_node(NodeType.CREATOR, "u1")
    net.add_node(NodeType.ARTICLE, "n1")
    net.add_node(NodeType.ARTICLE, "n2")
    net.add_node(NodeType.SUBJECT, "s1")
    net.add_edge(EdgeType.AUTHORSHIP, (NodeType.ARTICLE, "n1"), (NodeType.CREATOR, "u1"))
    net.add_edge(EdgeType.AUTHORSHIP, (NodeType.ARTICLE, "n2"), (NodeType.CREATOR, "u1"))
    net.add_edge(
        EdgeType.SUBJECT_INDICATION, (NodeType.ARTICLE, "n1"), (NodeType.SUBJECT, "s1")
    )
    net.add_edge(
        EdgeType.SUBJECT_INDICATION, (NodeType.ARTICLE, "n2"), (NodeType.SUBJECT, "s1")
    )
    return net


class TestConstruction:
    def test_node_counts(self, toy_network):
        assert toy_network.num_nodes() == 4
        assert toy_network.num_nodes(NodeType.ARTICLE) == 2

    def test_edge_counts(self, toy_network):
        assert toy_network.num_edges() == 4
        assert toy_network.num_edges(EdgeType.AUTHORSHIP) == 2

    def test_unknown_endpoint_rejected(self, toy_network):
        with pytest.raises(KeyError):
            toy_network.add_edge(
                EdgeType.AUTHORSHIP, (NodeType.ARTICLE, "ghost"), (NodeType.CREATOR, "u1")
            )

    def test_wrong_endpoint_types_rejected(self, toy_network):
        with pytest.raises(ValueError):
            toy_network.add_edge(
                EdgeType.AUTHORSHIP, (NodeType.SUBJECT, "s1"), (NodeType.CREATOR, "u1")
            )


class TestQueries:
    def test_neighbors_by_edge_type(self, toy_network):
        article = (NodeType.ARTICLE, "n1")
        authors = toy_network.neighbors(article, EdgeType.AUTHORSHIP)
        assert authors == [(NodeType.CREATOR, "u1")]
        all_neighbors = toy_network.neighbors(article)
        assert len(all_neighbors) == 2

    def test_degree(self, toy_network):
        assert toy_network.degree((NodeType.CREATOR, "u1")) == 2
        assert toy_network.degree((NodeType.SUBJECT, "s1")) == 2

    def test_neighbors_of_unknown_node_empty(self, toy_network):
        assert toy_network.neighbors((NodeType.ARTICLE, "ghost")) == []

    def test_convenience_accessors(self, toy_network):
        assert toy_network.article_creator("n1") == "u1"
        assert toy_network.article_subjects("n1") == ["s1"]
        assert sorted(toy_network.creator_articles("u1")) == ["n1", "n2"]
        assert sorted(toy_network.subject_articles("s1")) == ["n1", "n2"]

    def test_nodes_sorted(self, toy_network):
        articles = toy_network.nodes(NodeType.ARTICLE)
        assert articles == [(NodeType.ARTICLE, "n1"), (NodeType.ARTICLE, "n2")]

    def test_edges_listed_once(self, toy_network):
        assert len(toy_network.edges()) == 4
        assert len(toy_network.edges(EdgeType.AUTHORSHIP)) == 2


class TestFromDataset:
    def test_counts_match_dataset(self, small_dataset):
        net = HeterogeneousNetwork.from_dataset(small_dataset)
        assert net.num_nodes(NodeType.ARTICLE) == small_dataset.num_articles
        assert net.num_nodes(NodeType.CREATOR) == small_dataset.num_creators
        assert net.num_nodes(NodeType.SUBJECT) == small_dataset.num_subjects
        assert net.num_edges(EdgeType.AUTHORSHIP) == small_dataset.num_articles
        assert (
            net.num_edges(EdgeType.SUBJECT_INDICATION)
            == small_dataset.num_article_subject_links
        )

    def test_validate_passes(self, small_dataset):
        HeterogeneousNetwork.from_dataset(small_dataset).validate()

    def test_article_creator_agrees_with_dataset(self, small_dataset):
        net = HeterogeneousNetwork.from_dataset(small_dataset)
        for aid, article in list(small_dataset.articles.items())[:20]:
            assert net.article_creator(aid) == article.creator_id
            assert sorted(net.article_subjects(aid)) == sorted(article.subject_ids)


class TestValidate:
    def test_article_without_creator_fails(self):
        net = HeterogeneousNetwork()
        net.add_node(NodeType.ARTICLE, "n1")
        net.add_node(NodeType.SUBJECT, "s1")
        net.add_edge(
            EdgeType.SUBJECT_INDICATION, (NodeType.ARTICLE, "n1"), (NodeType.SUBJECT, "s1")
        )
        with pytest.raises(ValueError, match="0 creators"):
            net.validate()

    def test_article_without_subject_fails(self):
        net = HeterogeneousNetwork()
        net.add_node(NodeType.ARTICLE, "n1")
        net.add_node(NodeType.CREATOR, "u1")
        net.add_edge(EdgeType.AUTHORSHIP, (NodeType.ARTICLE, "n1"), (NodeType.CREATOR, "u1"))
        with pytest.raises(ValueError, match="no subjects"):
            net.validate()
