"""Tests for random walks over the News-HSN."""

import numpy as np
import pytest

from repro.graph import (
    EdgeType,
    HeterogeneousNetwork,
    NodeType,
    generate_walk_corpus,
    random_walk,
)


@pytest.fixture()
def network(small_dataset):
    return HeterogeneousNetwork.from_dataset(small_dataset)


class TestRandomWalk:
    def test_walk_length(self, network, rng):
        start = network.nodes(NodeType.ARTICLE)[0]
        walk = random_walk(network, start, length=15, rng=rng)
        assert len(walk) == 15
        assert walk[0] == start

    def test_consecutive_nodes_are_neighbors(self, network, rng):
        start = network.nodes(NodeType.ARTICLE)[0]
        walk = random_walk(network, start, length=10, rng=rng)
        for a, b in zip(walk, walk[1:]):
            assert b in network.neighbors(a)

    def test_types_alternate_legally(self, network, rng):
        # Articles connect only to creators/subjects; creators/subjects only
        # to articles, so no two consecutive nodes share a type.
        start = network.nodes(NodeType.CREATOR)[0]
        walk = random_walk(network, start, length=20, rng=rng)
        for a, b in zip(walk, walk[1:]):
            assert a[0] != b[0]
            assert NodeType.ARTICLE in (a[0], b[0])

    def test_isolated_node_stops_early(self, rng):
        net = HeterogeneousNetwork()
        net.add_node(NodeType.CREATOR, "lonely")
        walk = random_walk(net, (NodeType.CREATOR, "lonely"), length=10, rng=rng)
        assert walk == [(NodeType.CREATOR, "lonely")]

    def test_length_validation(self, network, rng):
        with pytest.raises(ValueError):
            random_walk(network, network.nodes()[0], length=0, rng=rng)


class TestWalkCorpus:
    def test_corpus_size(self, network):
        corpus = generate_walk_corpus(network, num_walks=2, walk_length=5, seed=0)
        assert len(corpus) == 2 * network.num_nodes()

    def test_restricted_node_type(self, network):
        corpus = generate_walk_corpus(
            network, num_walks=1, walk_length=5, seed=0, node_type=NodeType.SUBJECT
        )
        assert len(corpus) == network.num_nodes(NodeType.SUBJECT)
        starts = {walk[0] for walk in corpus}
        assert all(node[0] == NodeType.SUBJECT for node in starts)

    def test_every_node_is_a_start(self, network):
        corpus = generate_walk_corpus(network, num_walks=1, walk_length=3, seed=0)
        starts = {walk[0] for walk in corpus}
        assert starts == set(network.nodes())

    def test_deterministic_for_seed(self, network):
        a = generate_walk_corpus(network, num_walks=1, walk_length=8, seed=3)
        b = generate_walk_corpus(network, num_walks=1, walk_length=8, seed=3)
        assert a == b

    def test_different_seeds_differ(self, network):
        a = generate_walk_corpus(network, num_walks=1, walk_length=8, seed=3)
        b = generate_walk_corpus(network, num_walks=1, walk_length=8, seed=4)
        assert a != b
