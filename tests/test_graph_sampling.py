"""Tests for the k-fold / θ-subsampling protocol (paper §5.1.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.sampling import (
    Split,
    k_fold_indices,
    k_fold_splits,
    stratified_k_fold_splits,
    tri_splits,
)


class TestKFoldIndices:
    def test_partition_covers_everything(self, rng):
        folds = k_fold_indices(25, 5, rng)
        combined = np.concatenate(folds)
        assert sorted(combined.tolist()) == list(range(25))

    def test_folds_near_equal(self, rng):
        folds = k_fold_indices(23, 5, rng)
        sizes = [len(f) for f in folds]
        assert max(sizes) - min(sizes) <= 1

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            k_fold_indices(10, 1, rng)
        with pytest.raises(ValueError):
            k_fold_indices(3, 5, rng)


class TestKFoldSplits:
    def test_train_test_disjoint_and_complete(self, rng):
        ids = [f"id{i}" for i in range(30)]
        for split in k_fold_splits(ids, 10, rng):
            assert not (set(split.train) & set(split.test))
            assert sorted(split.train + split.test) == sorted(ids)

    def test_ratio_nine_to_one(self, rng):
        ids = [f"id{i}" for i in range(100)]
        split = k_fold_splits(ids, 10, rng)[0]
        assert len(split.test) == 10
        assert len(split.train) == 90

    def test_each_id_tested_exactly_once(self, rng):
        ids = [f"id{i}" for i in range(40)]
        tested = []
        for split in k_fold_splits(ids, 8, rng):
            tested.extend(split.test)
        assert sorted(tested) == sorted(ids)


class TestStratified:
    def test_label_balance_per_fold(self, rng):
        ids = [f"id{i}" for i in range(60)]
        labels = [i % 3 for i in range(60)]
        splits = stratified_k_fold_splits(ids, labels, 5, rng)
        label_of = dict(zip(ids, labels))
        for split in splits:
            test_labels = [label_of[i] for i in split.test]
            counts = [test_labels.count(c) for c in range(3)]
            assert max(counts) - min(counts) <= 1

    def test_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            stratified_k_fold_splits(["a"], [0, 1], 2, rng)


class TestThetaSubsample:
    def test_theta_one_is_identity(self, rng):
        split = Split(train=[f"t{i}" for i in range(20)], test=["x"])
        sub = split.subsample_train(1.0, rng)
        assert sub.train == split.train
        assert sub.test == split.test

    def test_theta_fraction(self, rng):
        split = Split(train=[f"t{i}" for i in range(100)], test=["x"])
        sub = split.subsample_train(0.3, rng)
        assert len(sub.train) == 30
        assert set(sub.train) <= set(split.train)

    def test_at_least_one_kept(self, rng):
        split = Split(train=["only"], test=["x"])
        assert split.subsample_train(0.1, rng).train == ["only"]

    def test_test_set_untouched(self, rng):
        split = Split(train=[f"t{i}" for i in range(10)], test=["a", "b"])
        assert split.subsample_train(0.5, rng).test == ["a", "b"]

    def test_validation(self, rng):
        split = Split(train=["a"], test=[])
        with pytest.raises(ValueError):
            split.subsample_train(0.0, rng)
        with pytest.raises(ValueError):
            split.subsample_train(1.5, rng)


class TestTriSplits:
    def test_yields_k_folds(self):
        articles = [f"n{i}" for i in range(50)]
        creators = [f"u{i}" for i in range(20)]
        subjects = [f"s{i}" for i in range(10)]
        splits = list(tri_splits(articles, creators, subjects, k=5, seed=0))
        assert len(splits) == 5

    def test_deterministic_for_seed(self):
        articles = [f"n{i}" for i in range(50)]
        creators = [f"u{i}" for i in range(20)]
        subjects = [f"s{i}" for i in range(10)]
        a = list(tri_splits(articles, creators, subjects, k=5, seed=7))
        b = list(tri_splits(articles, creators, subjects, k=5, seed=7))
        assert a[0].articles.test == b[0].articles.test
        assert a[2].creators.train == b[2].creators.train

    def test_subsample_all_three(self, rng):
        articles = [f"n{i}" for i in range(50)]
        creators = [f"u{i}" for i in range(20)]
        subjects = [f"s{i}" for i in range(10)]
        split = next(tri_splits(articles, creators, subjects, k=5, seed=0))
        sub = split.subsample_train(0.5, rng)
        assert len(sub.articles.train) == round(0.5 * len(split.articles.train))
        assert len(sub.creators.train) == round(0.5 * len(split.creators.train))

    def test_stratified_articles(self):
        articles = [f"n{i}" for i in range(60)]
        labels = [i % 6 for i in range(60)]
        creators = [f"u{i}" for i in range(20)]
        subjects = [f"s{i}" for i in range(10)]
        splits = list(
            tri_splits(articles, creators, subjects, k=6, seed=0, article_labels=labels)
        )
        label_of = dict(zip(articles, labels))
        for split in splits:
            test_labels = [label_of[a] for a in split.articles.test]
            assert len(set(test_labels)) == 6  # all classes present


@given(st.integers(10, 80), st.integers(2, 8), st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_property_kfold_partition_laws(n, k, seed):
    if n < k:
        return
    rng = np.random.default_rng(seed)
    ids = [f"id{i}" for i in range(n)]
    splits = k_fold_splits(ids, k, rng)
    assert len(splits) == k
    all_test = [x for s in splits for x in s.test]
    assert sorted(all_test) == sorted(ids)  # exact cover by test folds
    for s in splits:
        assert len(s.train) + len(s.test) == n
        assert not (set(s.train) & set(s.test))


@given(
    st.integers(5, 60),
    st.floats(min_value=0.05, max_value=1.0),
    st.integers(0, 500),
)
@settings(max_examples=40, deadline=None)
def test_property_theta_size(n, theta, seed):
    rng = np.random.default_rng(seed)
    split = Split(train=[f"t{i}" for i in range(n)], test=[])
    sub = split.subsample_train(theta, rng)
    expected = max(1, int(round(theta * n)))
    assert len(sub.train) == expected
    assert len(set(sub.train)) == len(sub.train)  # no duplicates


class TestSplitPersistence:
    def _split(self):
        articles = [f"n{i}" for i in range(30)]
        creators = [f"u{i}" for i in range(10)]
        subjects = [f"s{i}" for i in range(6)]
        return next(tri_splits(articles, creators, subjects, k=5, seed=1))

    def test_roundtrip(self, tmp_path):
        from repro.graph import load_tri_split, save_tri_split

        split = self._split()
        path = tmp_path / "split.json"
        save_tri_split(split, path)
        loaded = load_tri_split(path)
        assert loaded.articles.train == split.articles.train
        assert loaded.articles.test == split.articles.test
        assert loaded.creators.train == split.creators.train
        assert loaded.subjects.test == split.subjects.test

    def test_malformed_rejected(self, tmp_path):
        from repro.graph import load_tri_split

        path = tmp_path / "bad.json"
        path.write_text('{"articles": {"train": ["a"]}}')
        with pytest.raises(ValueError):
            load_tri_split(path)

    def test_overlap_rejected(self, tmp_path):
        import json

        from repro.graph import load_tri_split

        payload = {
            kind: {"train": ["x"], "test": ["x"]}
            for kind in ("articles", "creators", "subjects")
        }
        path = tmp_path / "overlap.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="overlap"):
            load_tri_split(path)
