"""Tests for sweep failure shielding."""

import pytest

from repro.baselines import MajorityBaseline
from repro.experiments import run_sweep


class ExplodingMethod(MajorityBaseline):
    name = "exploding"

    def fit(self, dataset, split):
        raise RuntimeError("kaboom")


class TestFailureShielding:
    def test_sweep_survives_a_crashing_method(self, tiny_dataset):
        methods = {
            "majority": lambda seed: MajorityBaseline(),
            "exploding": lambda seed: ExplodingMethod(),
        }
        result = run_sweep(tiny_dataset, methods, thetas=(1.0,), folds=2, k=5, seed=0)
        # The healthy method's cells are intact.
        assert len(result.cells["majority"]["article"][1.0]) == 2
        # The broken method lost its cells and is recorded in failures.
        assert len(result.cells["exploding"]["article"][1.0]) == 0
        assert len(result.failures) == 2
        name, theta, fold, message = result.failures[0]
        assert name == "exploding"
        assert "kaboom" in message

    def test_raise_on_error_propagates(self, tiny_dataset):
        methods = {"exploding": lambda seed: ExplodingMethod()}
        with pytest.raises(RuntimeError, match="kaboom"):
            run_sweep(
                tiny_dataset, methods, thetas=(1.0,), folds=1, k=5, seed=0,
                raise_on_error=True,
            )

    def test_no_failures_on_healthy_sweep(self, tiny_dataset):
        methods = {"majority": lambda seed: MajorityBaseline()}
        result = run_sweep(tiny_dataset, methods, thetas=(1.0,), folds=1, k=5)
        assert result.failures == []
