"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import (
    FakeDetector,
    FakeDetectorConfig,
    HeterogeneousNetwork,
    generate_dataset,
    load_dataset,
    save_dataset,
)
from repro.graph.sampling import tri_splits
from repro.metrics import BinaryMetrics


class TestFullPipeline:
    def test_generate_save_load_train_predict(self, tmp_path):
        """The README quickstart flow, condensed."""
        dataset = generate_dataset(scale=0.015, seed=21)
        path = tmp_path / "corpus.jsonl"
        save_dataset(dataset, path)
        dataset = load_dataset(path)

        split = next(
            tri_splits(
                sorted(dataset.articles),
                sorted(dataset.creators),
                sorted(dataset.subjects),
                k=10,
                seed=0,
            )
        )
        config = FakeDetectorConfig(
            epochs=20, explicit_dim=40, vocab_size=800, max_seq_len=16,
            embed_dim=8, rnn_hidden=10, latent_dim=8, gdu_hidden=14, seed=0,
        )
        detector = FakeDetector(config).fit(dataset, split)
        predictions = detector.predict("article")

        test_ids = split.articles.test
        y_true = [dataset.articles[a].label.binary for a in test_ids]
        y_pred = [int(predictions[a] >= 3) for a in test_ids]
        metrics = BinaryMetrics.compute(y_true, y_pred)
        # Must beat coin flips on held-out articles.
        assert metrics.accuracy > 0.5

    def test_diffusion_helps_creators(self):
        """Creators have weak text but strong graph signal: the full model
        should beat its own no-diffusion ablation on creator inference."""
        dataset = generate_dataset(scale=0.03, seed=4)
        split = next(
            tri_splits(
                sorted(dataset.articles),
                sorted(dataset.creators),
                sorted(dataset.subjects),
                k=10,
                seed=0,
            )
        )
        base = dict(
            epochs=30, explicit_dim=50, vocab_size=1200, max_seq_len=16,
            embed_dim=8, rnn_hidden=10, latent_dim=8, gdu_hidden=16, seed=2,
        )

        def creator_accuracy(config):
            det = FakeDetector(config).fit(dataset, split)
            preds = det.predict("creator")
            test = [
                c for c in split.creators.test if dataset.creators[c].label is not None
            ]
            y_true = [dataset.creators[c].label.binary for c in test]
            y_pred = [int(preds[c] >= 3) for c in test]
            return float(np.mean([t == p for t, p in zip(y_true, y_pred)]))

        with_diffusion = creator_accuracy(FakeDetectorConfig(**base))
        without = creator_accuracy(FakeDetectorConfig(**base, use_diffusion=False))
        assert with_diffusion >= without - 0.02  # diffusion never badly hurts
        # And on this seeded corpus it should strictly help.
        assert with_diffusion > 0.5

    def test_network_and_dataset_agree(self):
        dataset = generate_dataset(scale=0.015, seed=3)
        network = HeterogeneousNetwork.from_dataset(dataset)
        network.validate()
        assert network.num_edges() == (
            dataset.num_creator_article_links + dataset.num_article_subject_links
        )


class TestCrossMethodComparison:
    """One shared split, every method, checked for basic sanity."""

    @pytest.fixture(scope="class")
    def arena(self):
        dataset = generate_dataset(scale=0.02, seed=33)
        split = next(
            tri_splits(
                sorted(dataset.articles),
                sorted(dataset.creators),
                sorted(dataset.subjects),
                k=10,
                seed=1,
            )
        )
        return dataset, split

    def test_every_method_trains_and_predicts(self, arena):
        from repro.experiments import default_methods

        dataset, split = arena
        for name, factory in default_methods(fast=True).items():
            model = factory(0)
            model.fit(dataset, split)
            for kind in ("article", "creator", "subject"):
                preds = model.predict(kind)
                assert preds, f"{name} returned no {kind} predictions"
                assert all(0 <= v <= 5 for v in preds.values()), name

    def test_fakedetector_competitive_on_articles(self, arena):
        """FakeDetector must at least match the median baseline."""
        from repro.experiments import default_methods

        dataset, split = arena
        accuracies = {}
        for name, factory in default_methods(fast=True).items():
            model = factory(0)
            model.fit(dataset, split)
            preds = model.predict("article")
            test = split.articles.test
            y_true = [dataset.articles[a].label.binary for a in test]
            y_pred = [int(preds[a] >= 3) for a in test]
            accuracies[name] = float(np.mean([t == p for t, p in zip(y_true, y_pred)]))
        ranked = sorted(accuracies.values())
        median = ranked[len(ranked) // 2]
        assert accuracies["FakeDetector"] >= median - 0.03, accuracies
