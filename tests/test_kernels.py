"""Fused sequence kernels: gradchecks and equivalence with the unrolled tape.

The contract under test (docs/performance.md): ``repro.autograd.kernels``
runs each gru/lstm/bigru recurrence as a single tape node with a
hand-written BPTT backward, and is numerically equivalent to the unrolled
per-timestep reference path — same forward values, same parameter
gradients, same training trajectories, interchangeable checkpoints.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import GRUEncoder, Tensor, gradcheck
from repro.autograd.kernels import (
    embedding_gather,
    gdu_layer,
    gru_sequence,
    lstm_sequence,
)

pytestmark = pytest.mark.kernels

#: mask with a padded tail, a full row, and an all-pad row — the shapes the
#: encoder actually produces.
MASK = np.array([[1.0, 1.0, 1.0, 0.0], [1.0, 1.0, 1.0, 1.0], [0.0] * 4])


def _stacked(rng, E, H, gates):
    return (
        Tensor(rng.standard_normal((E, gates * H)) * 0.5, requires_grad=True),
        Tensor(rng.standard_normal((H, gates * H)) * 0.5, requires_grad=True),
        Tensor(rng.standard_normal(gates * H) * 0.1, requires_grad=True),
    )


class TestGradcheck:
    @pytest.mark.parametrize("reverse", [False, True])
    def test_gru_sequence(self, rng, reverse):
        x = Tensor(rng.standard_normal((3, 4, 2)), requires_grad=True)
        w_x, w_h, b = _stacked(rng, 2, 3, gates=3)

        def loss(x, w_x, w_h, b):
            return (gru_sequence(x, MASK, w_x, w_h, b, reverse=reverse) ** 2).sum()

        assert gradcheck(loss, [x, w_x, w_h, b], tolerance=1e-5)

    @pytest.mark.parametrize("reverse", [False, True])
    def test_lstm_sequence(self, rng, reverse):
        x = Tensor(rng.standard_normal((3, 4, 2)), requires_grad=True)
        w_x, w_h, b = _stacked(rng, 2, 3, gates=4)

        def loss(x, w_x, w_h, b):
            return (lstm_sequence(x, MASK, w_x, w_h, b, reverse=reverse) ** 2).sum()

        assert gradcheck(loss, [x, w_x, w_h, b], tolerance=1e-5)

    def test_embedding_gather(self, rng):
        weight = Tensor(rng.standard_normal((8, 3)), requires_grad=True)
        idx = np.array([[1, 5, 5, 0], [7, 1, 2, 3]])  # repeats accumulate

        def loss(weight):
            return (embedding_gather(weight, idx) ** 2).sum()

        assert gradcheck(loss, [weight])


class TestKernelSemantics:
    def test_gru_masked_positions_carry_state(self, rng):
        x = Tensor(rng.standard_normal((1, 4, 2)))
        w_x, w_h, b = _stacked(rng, 2, 3, gates=3)
        mask = np.array([[1.0, 1.0, 0.0, 0.0]])
        out = gru_sequence(x, mask, w_x, w_h, b)
        np.testing.assert_array_equal(out.data[0, 1], out.data[0, 2])
        np.testing.assert_array_equal(out.data[0, 1], out.data[0, 3])

    def test_empty_sequence(self, rng):
        x = Tensor(rng.standard_normal((2, 0, 2)))
        w_x, w_h, b = _stacked(rng, 2, 3, gates=3)
        out = gru_sequence(x, np.zeros((2, 0)), w_x, w_h, b)
        assert out.shape == (2, 0, 3)

    def test_reverse_equals_flipped_forward(self, rng):
        """With a full mask, reverse=True is the time-flipped recurrence."""
        x_data = rng.standard_normal((2, 5, 2))
        w_x, w_h, b = _stacked(rng, 2, 3, gates=3)
        mask = np.ones((2, 5))
        rev = gru_sequence(Tensor(x_data), mask, w_x, w_h, b, reverse=True)
        fwd = gru_sequence(Tensor(x_data[:, ::-1].copy()), mask, w_x, w_h, b)
        np.testing.assert_allclose(rev.data, fwd.data[:, ::-1], atol=1e-12)

    def test_shape_validation(self, rng):
        x = Tensor(rng.standard_normal((2, 4, 2)))
        w_x, w_h, b = _stacked(rng, 2, 3, gates=3)
        with pytest.raises(ValueError):
            gru_sequence(x, np.ones((2, 5)), w_x, w_h, b)  # bad mask
        with pytest.raises(ValueError):
            gru_sequence(Tensor(rng.standard_normal((2, 4))), np.ones((2, 4)),
                         w_x, w_h, b)  # not 3-d
        bad_wh = Tensor(rng.standard_normal((4, 9)))
        with pytest.raises(ValueError):
            gru_sequence(x, np.ones((2, 4)), w_x, bad_wh, b)

    def test_embedding_gather_range_check(self, rng):
        weight = Tensor(rng.standard_normal((4, 2)))
        with pytest.raises(IndexError):
            embedding_gather(weight, np.array([[0, 4]]))


def _pair(cell, rng_seed=0, **kwargs):
    """Two identically-initialized encoders, fused and unrolled."""
    make = lambda fused: GRUEncoder(
        vocab_size=20, embed_dim=4, hidden_size=6, output_size=5,
        rng=np.random.default_rng(rng_seed), cell=cell, fused=fused, **kwargs
    )
    return make(True), make(False)


SEQ = np.array(
    [
        [3, 7, 5, 0, 0, 0],
        [1, 2, 3, 4, 5, 6],
        [9, 0, 0, 0, 0, 0],
        [0, 0, 0, 0, 0, 0],  # all-pad row
    ]
)


class TestEncoderEquivalence:
    @pytest.mark.parametrize("cell", ["gru", "lstm", "bigru"])
    def test_forward_and_gradients_match_unrolled(self, cell):
        fused, unrolled = _pair(cell)
        out_f, out_u = fused(SEQ), unrolled(SEQ)
        np.testing.assert_allclose(out_f.data, out_u.data, atol=1e-12)
        (out_f ** 2).sum().backward()
        (out_u ** 2).sum().backward()
        for (name, p_f), (_, p_u) in zip(
            fused.named_parameters(), unrolled.named_parameters()
        ):
            g_f = p_f.grad if p_f.grad is not None else np.zeros_like(p_f.data)
            g_u = p_u.grad if p_u.grad is not None else np.zeros_like(p_u.data)
            np.testing.assert_allclose(g_f, g_u, atol=1e-12, err_msg=name)

    @pytest.mark.parametrize("cell", ["gru", "lstm", "bigru"])
    def test_trailing_padding_is_free_and_ignored(self, cell):
        fused, _ = _pair(cell)
        seq = np.array([[3, 7, 5, 0, 0, 0]])
        longer = np.array([[3, 7, 5] + [0] * 9])
        np.testing.assert_allclose(fused(seq).data, fused(longer).data, atol=1e-12)

    @pytest.mark.parametrize("cell", ["gru", "lstm", "bigru"])
    def test_all_padding_batch(self, cell):
        fused, unrolled = _pair(cell)
        seq = np.zeros((2, 5), dtype=int)
        np.testing.assert_allclose(fused(seq).data, unrolled(seq).data, atol=1e-12)
        np.testing.assert_allclose(fused(seq).data[0], fused(seq).data[1])

    def test_state_dict_round_trips_across_modes(self):
        """Fused and unrolled modes share one checkpoint format."""
        fused, unrolled = _pair("gru", rng_seed=1)
        other = GRUEncoder(
            vocab_size=20, embed_dim=4, hidden_size=6, output_size=5,
            rng=np.random.default_rng(99), cell="gru", fused=False,
        )
        other.load_state_dict(fused.state_dict())
        np.testing.assert_allclose(other(SEQ).data, fused(SEQ).data, atol=1e-12)
        fused.load_state_dict(other.state_dict())
        np.testing.assert_allclose(fused(SEQ).data, unrolled(SEQ).data, atol=1e-12)


class TestObservabilityIntegration:
    def test_profiler_sees_fused_ops(self):
        from repro.obs import OpProfiler

        fused, _ = _pair("gru")
        with OpProfiler() as profiler:
            (fused(SEQ) ** 2).sum().backward()
        snap = profiler.snapshot()
        assert "gru_sequence" in snap["forward"]
        assert "embedding_gather" in snap["forward"]
        assert "gru_sequence" in snap["backward"]

    def test_sanitizer_accepts_fused_ops(self):
        from repro.analysis.sanitize import Sanitizer

        fused, _ = _pair("lstm")
        with Sanitizer() as sanitizer:
            (fused(SEQ) ** 2).sum().backward()
        assert sanitizer.stats.forward_ops > 0
        assert sanitizer.stats.backward_ops > 0


#: Every (use_forget_gate, use_adjust_gate, use_selection_gates) combination.
GDU_ABLATIONS = [
    (f, a, s) for f in (True, False) for a in (True, False) for s in (True, False)
]


def _gdu_pair(flags=(True, True, True), seed=3, input_dim=5, hidden_dim=4):
    """Two identically-initialized GDUs, fused and unrolled."""
    from repro.core.gdu import GDU

    forget, adjust, select = flags
    make = lambda fused: GDU(
        input_dim, hidden_dim, rng=np.random.default_rng(seed),
        use_forget_gate=forget, use_adjust_gate=adjust,
        use_selection_gates=select, fused=fused,
    )
    return make(True), make(False)


def _gdu_inputs(rng, n=7, input_dim=5, hidden_dim=4, requires_grad=False):
    return (
        Tensor(rng.standard_normal((n, input_dim)), requires_grad=requires_grad),
        Tensor(rng.standard_normal((n, hidden_dim)), requires_grad=requires_grad),
        Tensor(rng.standard_normal((n, hidden_dim)), requires_grad=requires_grad),
    )


class TestGduGradcheck:
    @pytest.mark.parametrize("flags", GDU_ABLATIONS)
    def test_gdu_layer(self, rng, flags):
        fused, _ = _gdu_pair(flags)
        x, z, t = _gdu_inputs(rng, requires_grad=True)
        params = [p for _, p in fused.named_parameters()]

        def loss(x, z, t, *_params):
            return (fused(x, z, t) ** 2).sum()

        assert gradcheck(loss, [x, z, t] + params, tolerance=1e-5)


class TestGduEquivalence:
    @pytest.mark.parametrize("flags", GDU_ABLATIONS)
    def test_forward_and_gradients_match_unrolled(self, rng, flags):
        fused, unrolled = _gdu_pair(flags)
        x_f, z_f, t_f = _gdu_inputs(rng, requires_grad=True)
        x_u = Tensor(x_f.data.copy(), requires_grad=True)
        z_u = Tensor(z_f.data.copy(), requires_grad=True)
        t_u = Tensor(t_f.data.copy(), requires_grad=True)
        h_f, h_u = fused(x_f, z_f, t_f), unrolled(x_u, z_u, t_u)
        np.testing.assert_allclose(h_f.data, h_u.data, atol=1e-12)
        (h_f ** 2).sum().backward()
        (h_u ** 2).sum().backward()
        for (name, p_f), (_, p_u) in zip(
            fused.named_parameters(), unrolled.named_parameters()
        ):
            np.testing.assert_allclose(
                p_f.grad, p_u.grad, atol=1e-12, err_msg=name
            )
        for name, a, b in (("x", x_f, x_u), ("z", z_f, z_u), ("t", t_f, t_u)):
            np.testing.assert_allclose(a.grad, b.grad, atol=1e-12, err_msg=name)

    @pytest.mark.parametrize("flags", GDU_ABLATIONS)
    @pytest.mark.parametrize("zero_ports", [("t",), ("z", "t")])
    def test_zero_port_fast_paths_match_unrolled(self, rng, flags, zero_ports):
        """Exactly-zero no-grad ports (the §4.2 defaults) stay equivalent.

        ``diffuse`` feeds zero states through z and t in round 1 and through
        t on creator/subject units every round; the fused kernel serves
        those calls from collapsed fast paths, which must agree with the
        unrolled tape and still deliver a gradient to *every* parameter
        (dead gates get exact zeros, not None).
        """
        fused, unrolled = _gdu_pair(flags)
        x_f, _, _ = _gdu_inputs(rng, requires_grad=True)
        x_u = Tensor(x_f.data.copy(), requires_grad=True)
        zero = lambda: Tensor(np.zeros((7, 4)))  # zero_state: no grad
        live = lambda: rng.standard_normal((7, 4))
        z_data = zero().data if "z" in zero_ports else live()
        h_f = fused(
            x_f,
            Tensor(z_data, requires_grad=False) if "z" in zero_ports
            else Tensor(z_data.copy(), requires_grad=True),
            zero(),
        )
        h_u = unrolled(
            x_u,
            Tensor(z_data, requires_grad=False) if "z" in zero_ports
            else Tensor(z_data.copy(), requires_grad=True),
            zero(),
        )
        np.testing.assert_allclose(h_f.data, h_u.data, atol=1e-12)
        (h_f ** 2).sum().backward()
        (h_u ** 2).sum().backward()
        for (name, p_f), (_, p_u) in zip(
            fused.named_parameters(), unrolled.named_parameters()
        ):
            assert p_f.grad is not None, f"fast path dropped grad for {name}"
            np.testing.assert_allclose(
                p_f.grad, p_u.grad, atol=1e-12, err_msg=name
            )
        np.testing.assert_allclose(x_f.grad, x_u.grad, atol=1e-12)

    @pytest.mark.parametrize("flags", GDU_ABLATIONS)
    def test_zero_port_fast_paths_pass_gradcheck(self, rng, flags):
        """Numerical gradcheck through the t-zero fast path's x/z inputs."""
        fused, _ = _gdu_pair(flags)
        x = Tensor(rng.standard_normal((5, 5)), requires_grad=True)
        z = Tensor(rng.standard_normal((5, 4)), requires_grad=True)
        t = Tensor(np.zeros((5, 4)))
        params = [p for _, p in fused.named_parameters()]

        def loss(x, z, *_params):
            return (fused(x, z, t) ** 2).sum()

        assert gradcheck(loss, [x, z] + params, tolerance=1e-5)

    def test_state_dict_round_trips_across_modes(self, rng):
        """Fused and unrolled GDUs share one checkpoint format."""
        from repro.core.gdu import GDU

        fused, unrolled = _gdu_pair(seed=1)
        other = GDU(5, 4, rng=np.random.default_rng(99), fused=False)
        other.load_state_dict(fused.state_dict())
        x, z, t = _gdu_inputs(rng)
        np.testing.assert_allclose(other(x, z, t).data, fused(x, z, t).data,
                                   atol=1e-12)
        fused.load_state_dict(other.state_dict())
        np.testing.assert_allclose(fused(x, z, t).data, unrolled(x, z, t).data,
                                   atol=1e-12)

    def test_single_tape_node(self, rng):
        """The whole fused GDU is one node: h's parents are the raw inputs."""
        fused, unrolled = _gdu_pair()
        x, z, t = _gdu_inputs(rng, requires_grad=True)
        h = fused(x, z, t)
        assert x in h._parents and z in h._parents and t in h._parents
        deep = unrolled(x, z, t)
        assert x not in deep._parents  # the unrolled tape is nested

    def test_shape_validation(self, rng):
        x, z, t = _gdu_inputs(rng)
        w_u = Tensor(rng.standard_normal((13, 4)))
        b_u = Tensor(rng.standard_normal(4))
        with pytest.raises(ValueError):
            gdu_layer(x, z, Tensor(rng.standard_normal((3, 4))), w_u, b_u)
        with pytest.raises(ValueError):
            gdu_layer(x, z, t, Tensor(rng.standard_normal((12, 4))), b_u)
        with pytest.raises(ValueError):
            gdu_layer(x, z, t, w_u, b_u,
                      forget=(Tensor(rng.standard_normal((13, 5))),
                              Tensor(rng.standard_normal(5))))


class TestGduObservability:
    def test_profiler_sees_gdu_layer(self, rng):
        from repro.obs import OpProfiler

        fused, _ = _gdu_pair()
        x, z, t = _gdu_inputs(rng, requires_grad=True)
        with OpProfiler() as profiler:
            (fused(x, z, t) ** 2).sum().backward()
        snap = profiler.snapshot()
        assert snap["forward"]["gdu_layer"]["calls"] == 1
        assert "gdu_layer" in snap["backward"]

    def test_sanitizer_accepts_gdu_layer(self, rng):
        from repro.analysis.sanitize import Sanitizer

        fused, _ = _gdu_pair()
        x, z, t = _gdu_inputs(rng, requires_grad=True)
        with Sanitizer() as sanitizer:
            (fused(x, z, t) ** 2).sum().backward()
        assert sanitizer.stats.forward_ops > 0
        assert sanitizer.stats.backward_ops > 0


class TestTrainingEquivalence:
    def test_fit_loss_curves_match(self, tiny_dataset, tiny_split):
        from repro.core import FakeDetector, FakeDetectorConfig

        curves = {}
        for fused in (True, False):
            config = FakeDetectorConfig(
                epochs=4, explicit_dim=30, vocab_size=300, max_seq_len=12,
                seed=5, fused_kernels=fused,
            )
            detector = FakeDetector(config).fit(tiny_dataset, tiny_split)
            curves[fused] = (detector.record.total, detector)
        np.testing.assert_allclose(
            curves[True][0], curves[False][0], rtol=1e-6, atol=1e-8
        )
        logits_f = curves[True][1].predict_logits()["article"]
        logits_u = curves[False][1].predict_logits()["article"]
        np.testing.assert_allclose(logits_f, logits_u, rtol=1e-5, atol=1e-7)

    def test_detector_checkpoint_round_trip_across_modes(
        self, tiny_dataset, tiny_split, tmp_path
    ):
        from repro.core import FakeDetector, FakeDetectorConfig

        config = FakeDetectorConfig(
            epochs=2, explicit_dim=30, vocab_size=300, max_seq_len=12,
            seed=5, fused_kernels=True,
        )
        detector = FakeDetector(config).fit(tiny_dataset, tiny_split)
        detector.save(tmp_path / "ckpt")
        loaded = FakeDetector.load(tmp_path / "ckpt")
        assert loaded.config.fused_kernels is True
        np.testing.assert_array_equal(
            loaded.predict_logits()["article"], detector.predict_logits()["article"]
        )
        # The same weights evaluated on the unrolled path agree too: the
        # checkpoint is mode-independent.
        state = detector.model.state_dict()
        unrolled_cfg = FakeDetectorConfig(
            epochs=2, explicit_dim=30, vocab_size=300, max_seq_len=12,
            seed=5, fused_kernels=False,
        )
        from repro.core.model import FakeDetectorModel

        explicit_dims = {
            kind: detector.features.by_type(kind).explicit.shape[1]
            for kind in ("article", "creator", "subject")
        }
        unrolled = FakeDetectorModel(
            unrolled_cfg, rng=np.random.default_rng(0), explicit_dims=explicit_dims
        )
        unrolled.load_state_dict(state)
        unrolled.eval()
        logits = unrolled(detector.features, detector.graph)["article"].data
        np.testing.assert_allclose(
            logits, detector.predict_logits()["article"], rtol=1e-8, atol=1e-10
        )
