"""Tier-1 gate: the library source tree must be lint-clean.

Every finding in ``src/repro`` is either fixed or carries an explicit
``# repro: noqa[RULE] reason`` suppression; this test keeps it that way.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths, render_findings
from repro.cli import main

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def test_source_tree_is_lint_clean():
    result = lint_paths([SRC])
    assert result.files_checked > 50  # the whole package, not a subset
    assert result.clean, "\n" + render_findings(result, fix_hints=True)


def test_suppressions_carry_reasons():
    """Every noqa marker must say *why* (text after the rule list)."""
    import re

    bare = []
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            match = re.search(r"#\s*repro:\s*noqa(\[[^\]]*\])?(?P<rest>.*)", line)
            if match and not match.group("rest").strip():
                bare.append(f"{path}:{lineno}")
    assert not bare, f"noqa without a reason: {bare}"


def test_cli_lint_exits_zero_on_clean_tree(capsys):
    assert main(["lint", str(SRC)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_lint_exits_nonzero_on_findings(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("print('diagnostic')\n")
    assert main(["lint", str(bad)]) == 1
    assert "RA001" in capsys.readouterr().out


def test_cli_analysis_report_runs(capsys):
    assert main(["analysis", "report", str(SRC)]) == 0
    out = capsys.readouterr().out
    assert "RA001" in out and "clean" in out
