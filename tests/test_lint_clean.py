"""Tier-1 gate: the library source tree must be analyzer-clean.

All four passes — per-file rules, architecture (RA1xx), concurrency
(RA2xx), tensor shapes (RA3xx) — must report zero findings on
``src/repro``. Every true positive is either fixed or carries an explicit
``# repro: noqa[RULE] reason`` suppression; this test keeps it that way.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths, render_findings
from repro.cli import main

pytestmark = pytest.mark.analysis

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
BASELINE = SRC.parent.parent / "results" / "lint_baseline.json"


def test_source_tree_is_lint_clean():
    result = lint_paths([SRC])
    assert result.files_checked > 50  # the whole package, not a subset
    assert result.passes_run == ["file", "arch", "concurrency", "shapes"]
    assert result.clean, "\n" + render_findings(result, fix_hints=True)


def test_program_passes_are_clean():
    """The whole-program passes alone, via the CLI surface."""
    assert main(["lint", str(SRC), "--pass", "arch,concurrency,shapes"]) == 0


def test_committed_baseline_is_empty():
    """The tree is clean, so the committed baseline must hold no debt."""
    from repro.analysis import load_baseline

    assert BASELINE.exists(), "results/lint_baseline.json is committed"
    assert load_baseline(BASELINE) == set()


def test_cli_fail_on_new_against_committed_baseline():
    assert main(
        ["lint", str(SRC), "--baseline", str(BASELINE), "--fail-on-new"]
    ) == 0


def test_suppressions_carry_reasons():
    """Every noqa marker must say *why* (text after the rule list)."""
    import re

    bare = []
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            match = re.search(r"#\s*repro:\s*noqa(\[[^\]]*\])?(?P<rest>.*)", line)
            if match and not match.group("rest").strip():
                bare.append(f"{path}:{lineno}")
    assert not bare, f"noqa without a reason: {bare}"


def test_cli_lint_exits_zero_on_clean_tree(capsys):
    assert main(["lint", str(SRC)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_lint_exits_nonzero_on_findings(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("print('diagnostic')\n")
    assert main(["lint", str(bad)]) == 1
    assert "RA001" in capsys.readouterr().out


def test_cli_analysis_report_runs(capsys):
    assert main(["analysis", "report", str(SRC)]) == 0
    out = capsys.readouterr().out
    assert "RA001" in out and "clean" in out


def test_cli_analysis_deps_text_and_dot(capsys):
    assert main(["analysis", "deps", str(SRC)]) == 0
    out = capsys.readouterr().out
    assert "autograd" in out and "serve" in out
    assert main(["analysis", "deps", str(SRC), "--dot"]) == 0
    assert capsys.readouterr().out.startswith("digraph")
