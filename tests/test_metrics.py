"""Tests for classification metrics (paper §5.1.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    BinaryMetrics,
    MultiClassMetrics,
    accuracy,
    confusion_matrix,
    f1_score,
    macro_f1,
    macro_precision,
    macro_recall,
    precision,
    recall,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([1, 0, 1], [1, 0, 1]) == 1.0

    def test_none_correct(self):
        assert accuracy([1, 1], [0, 0]) == 0.0

    def test_partial(self):
        assert accuracy([1, 0, 1, 0], [1, 0, 0, 1]) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy([], [])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([1], [1, 0])


class TestPrecisionRecallF1:
    def test_known_values(self):
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        # TP=2, FP=1, FN=1
        assert precision(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_no_predicted_positives(self):
        assert precision([1, 0], [0, 0]) == 0.0
        assert f1_score([1, 0], [0, 0]) == 0.0

    def test_no_actual_positives(self):
        assert recall([0, 0], [1, 0]) == 0.0

    def test_f1_harmonic_mean(self):
        y_true = [1, 1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 0, 1, 0]
        p = precision(y_true, y_pred)
        r = recall(y_true, y_pred)
        assert f1_score(y_true, y_pred) == pytest.approx(2 * p * r / (p + r))

    def test_custom_positive_class(self):
        y_true = [2, 2, 0]
        y_pred = [2, 0, 0]
        assert precision(y_true, y_pred, positive=2) == 1.0
        assert recall(y_true, y_pred, positive=2) == 0.5


class TestMacro:
    def test_macro_is_mean_of_per_class(self):
        y_true = [0, 0, 1, 1, 2, 2]
        y_pred = [0, 1, 1, 1, 2, 0]
        per_class = [precision(y_true, y_pred, c) for c in range(3)]
        assert macro_precision(y_true, y_pred, 3) == pytest.approx(np.mean(per_class))

    def test_macro_counts_absent_classes_as_zero(self):
        # Class 2 never appears and is never predicted -> contributes 0.
        y_true = [0, 1]
        y_pred = [0, 1]
        assert macro_f1(y_true, y_pred, 3) == pytest.approx(2 / 3)

    def test_macro_perfect_six_class(self):
        y = list(range(6))
        assert macro_f1(y, y, 6) == 1.0
        assert macro_recall(y, y, 6) == 1.0


class TestConfusionMatrix:
    def test_values(self):
        m = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(m, [[1, 1], [0, 2]])

    def test_num_classes_inferred(self):
        m = confusion_matrix([0, 4], [4, 0])
        assert m.shape == (5, 5)

    def test_explicit_num_classes(self):
        m = confusion_matrix([0, 1], [0, 1], num_classes=6)
        assert m.shape == (6, 6)
        assert m.sum() == 2

    def test_trace_equals_correct(self):
        y_true = [0, 1, 2, 1, 0]
        y_pred = [0, 1, 1, 1, 2]
        m = confusion_matrix(y_true, y_pred)
        assert np.trace(m) == sum(t == p for t, p in zip(y_true, y_pred))


class TestDataclasses:
    def test_binary_compute(self):
        m = BinaryMetrics.compute([1, 0, 1], [1, 0, 0])
        assert m.accuracy == pytest.approx(2 / 3)
        assert set(m.as_dict()) == {"accuracy", "f1", "precision", "recall"}

    def test_multi_compute(self):
        m = MultiClassMetrics.compute([0, 1, 5], [0, 1, 5], num_classes=6)
        assert m.accuracy == 1.0
        assert set(m.as_dict()) == {
            "accuracy", "macro_f1", "macro_precision", "macro_recall",
        }


labels6 = st.integers(0, 5)


@given(st.lists(st.tuples(labels6, labels6), min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_property_all_metrics_in_unit_interval(pairs):
    y_true = [a for a, _ in pairs]
    y_pred = [b for _, b in pairs]
    for value in (
        accuracy(y_true, y_pred),
        precision(y_true, y_pred),
        recall(y_true, y_pred),
        f1_score(y_true, y_pred),
        macro_precision(y_true, y_pred, 6),
        macro_recall(y_true, y_pred, 6),
        macro_f1(y_true, y_pred, 6),
    ):
        assert 0.0 <= value <= 1.0


@given(st.lists(labels6, min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_property_perfect_prediction_maximizes_everything(y):
    assert accuracy(y, y) == 1.0
    assert macro_recall(y, y, 6) == pytest.approx(
        len(set(y)) / 6
    )  # absent classes contribute 0


@given(st.lists(st.tuples(labels6, labels6), min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_property_confusion_matrix_row_sums(pairs):
    y_true = [a for a, _ in pairs]
    y_pred = [b for _, b in pairs]
    m = confusion_matrix(y_true, y_pred, num_classes=6)
    for c in range(6):
        assert m[c].sum() == y_true.count(c)
        assert m[:, c].sum() == y_pred.count(c)


@given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)), min_size=2, max_size=50))
@settings(max_examples=60, deadline=None)
def test_property_f1_between_precision_and_recall(pairs):
    y_true = [a for a, _ in pairs]
    y_pred = [b for _, b in pairs]
    p = precision(y_true, y_pred)
    r = recall(y_true, y_pred)
    f = f1_score(y_true, y_pred)
    assert min(p, r) - 1e-12 <= f <= max(p, r) + 1e-12
