"""Tests for calibration metrics."""

import numpy as np
import pytest

from repro.metrics import (
    calibration_bins,
    expected_calibration_error,
    render_reliability,
)


def make_probs(confidences, predicted, num_classes=3):
    probs = np.zeros((len(confidences), num_classes))
    for i, (c, p) in enumerate(zip(confidences, predicted)):
        probs[i] = (1 - c) / (num_classes - 1)
        probs[i, p] = c
    return probs


class TestBins:
    def test_perfectly_calibrated(self):
        # 70%-confident predictions that are right 70% of the time.
        rng = np.random.default_rng(0)
        n = 4000
        predicted = np.zeros(n, dtype=int)
        y_true = np.where(rng.random(n) < 0.7, 0, 1)
        probs = make_probs([0.7] * n, predicted)
        ece = expected_calibration_error(y_true, probs)
        assert ece < 0.03

    def test_overconfident_model_high_ece(self):
        # 99%-confident but only 50% right.
        y_true = np.array([0, 1] * 100)
        probs = make_probs([0.99] * 200, [0] * 200)
        ece = expected_calibration_error(y_true, probs)
        assert ece > 0.4

    def test_bin_partition(self):
        rng = np.random.default_rng(1)
        probs = rng.dirichlet(np.ones(3), size=50)
        y = rng.integers(0, 3, size=50)
        bins = calibration_bins(y, probs, num_bins=5)
        assert sum(b.count for b in bins) == 50
        for b in bins:
            assert 0 <= b.accuracy <= 1
            assert b.low <= b.mean_confidence <= b.high + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            calibration_bins([], np.zeros((0, 3)))
        with pytest.raises(ValueError):
            calibration_bins([0], np.zeros((2, 3)))
        with pytest.raises(ValueError):
            calibration_bins([0], np.ones((1, 3)) / 3, num_bins=0)


class TestRender:
    def test_contains_ece(self):
        y = [0, 1, 0, 1]
        probs = make_probs([0.8, 0.9, 0.6, 0.7], [0, 1, 0, 1])
        out = render_reliability(y, probs, num_bins=4)
        assert "expected calibration error" in out
        assert "conf" in out

    def test_on_trained_model(self, small_dataset, small_split):
        from repro.core import FakeDetector, FakeDetectorConfig

        config = FakeDetectorConfig(
            epochs=8, explicit_dim=30, vocab_size=600, max_seq_len=10,
            embed_dim=5, rnn_hidden=6, latent_dim=5, gdu_hidden=8, seed=0,
        )
        det = FakeDetector(config).fit(small_dataset, small_split)
        probs_by_id = det.predict_proba("article")
        test = small_split.articles.test
        probs = np.array([probs_by_id[a] for a in test])
        y = [small_dataset.articles[a].label.class_index for a in test]
        ece = expected_calibration_error(y, probs)
        assert 0.0 <= ece <= 1.0


class TestTemperatureScaling:
    def _overconfident(self, n=600, seed=0):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 3, size=n)
        # Logits point to the right class only 70% of the time but with
        # huge magnitude -> overconfident.
        predicted = np.where(rng.random(n) < 0.7, y, (y + 1) % 3)
        logits = np.full((n, 3), -8.0)
        logits[np.arange(n), predicted] = 8.0
        return logits, y

    def test_fits_temperature_above_one_for_overconfident(self):
        from repro.metrics import TemperatureScaler

        logits, y = self._overconfident()
        scaler = TemperatureScaler().fit(logits, y)
        assert scaler.temperature > 1.5

    def test_improves_ece(self):
        from repro.metrics import TemperatureScaler, expected_calibration_error

        logits, y = self._overconfident()
        raw = np.exp(logits - logits.max(axis=1, keepdims=True))
        raw /= raw.sum(axis=1, keepdims=True)
        before = expected_calibration_error(y, raw)
        scaler = TemperatureScaler().fit(logits, y)
        after = expected_calibration_error(y, scaler.transform(logits))
        assert after < before * 0.5

    def test_argmax_unchanged(self):
        from repro.metrics import TemperatureScaler

        logits, y = self._overconfident()
        scaler = TemperatureScaler().fit(logits, y)
        np.testing.assert_array_equal(
            scaler.transform(logits).argmax(axis=1), logits.argmax(axis=1)
        )

    def test_probabilities_normalized(self):
        from repro.metrics import TemperatureScaler

        logits, y = self._overconfident(n=50)
        probs = TemperatureScaler().fit(logits, y).transform(logits)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(50))

    def test_validation(self):
        from repro.metrics import TemperatureScaler

        with pytest.raises(ValueError):
            TemperatureScaler(low=0, high=1)
        with pytest.raises(ValueError):
            TemperatureScaler().fit(np.zeros((2, 3)), [0])
