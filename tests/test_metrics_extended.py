"""Tests for ranking and ordinal metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    average_precision,
    kendall_tau,
    mean_absolute_error,
    mean_squared_error,
    precision_at_k,
    quadratic_weighted_kappa,
    roc_auc,
    roc_curve,
    within_one_accuracy,
)


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_perfectly_wrong(self):
        assert roc_auc([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=4000)
        scores = rng.random(4000)
        assert abs(roc_auc(y, scores) - 0.5) < 0.03

    def test_ties_handled_with_midranks(self):
        # All scores equal -> AUC exactly 0.5.
        assert roc_auc([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == 0.5

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc([1, 1], [0.2, 0.8])

    def test_invariant_to_monotone_transform(self):
        y = [0, 1, 0, 1, 1, 0]
        s = np.array([0.1, 0.7, 0.3, 0.9, 0.6, 0.2])
        assert roc_auc(y, s) == roc_auc(y, s * 100 - 3)


class TestRocCurve:
    def test_starts_at_origin(self):
        fpr, tpr, _ = roc_curve([0, 1, 1], [0.1, 0.5, 0.9])
        assert fpr[0] == 0.0 and tpr[0] == 0.0

    def test_ends_at_one_one(self):
        fpr, tpr, _ = roc_curve([0, 1, 1], [0.1, 0.5, 0.9])
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_monotone(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, size=50)
        s = rng.random(50)
        fpr, tpr, _ = roc_curve(y, s)
        assert (np.diff(fpr) >= 0).all()
        assert (np.diff(tpr) >= 0).all()


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision([0, 0, 1, 1], [0.1, 0.2, 0.9, 0.8]) == 1.0

    def test_worst_ranking(self):
        ap = average_precision([1, 0, 0, 0], [0.0, 0.5, 0.6, 0.7])
        assert ap == pytest.approx(0.25)

    def test_requires_positives(self):
        with pytest.raises(ValueError):
            average_precision([0, 0], [0.1, 0.2])


class TestPrecisionAtK:
    def test_basic(self):
        assert precision_at_k([1, 0, 1, 0], [0.9, 0.8, 0.7, 0.1], k=2) == 0.5

    def test_k_larger_than_n(self):
        assert precision_at_k([1, 0], [0.9, 0.1], k=10) == 0.5

    def test_k_validation(self):
        with pytest.raises(ValueError):
            precision_at_k([1], [0.5], k=0)


class TestOrdinal:
    def test_mae_and_mse(self):
        assert mean_absolute_error([1, 2, 3], [1, 4, 3]) == pytest.approx(2 / 3)
        assert mean_squared_error([1, 2, 3], [1, 4, 3]) == pytest.approx(4 / 3)

    def test_within_one(self):
        assert within_one_accuracy([1, 3, 5], [2, 3, 1]) == pytest.approx(2 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_error([], [])

    def test_kendall_perfect_agreement(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == 1.0

    def test_kendall_perfect_disagreement(self):
        assert kendall_tau([1, 2, 3, 4], [40, 30, 20, 10]) == -1.0

    def test_kendall_needs_two(self):
        with pytest.raises(ValueError):
            kendall_tau([1], [1])

    def test_kappa_perfect(self):
        y = [0, 1, 2, 3, 4, 5]
        assert quadratic_weighted_kappa(y, y) == pytest.approx(1.0)

    def test_kappa_penalizes_distance(self):
        y_true = [0, 0, 5, 5]
        near = quadratic_weighted_kappa(y_true, [1, 1, 4, 4])
        far = quadratic_weighted_kappa(y_true, [5, 5, 0, 0])
        assert near > far

    def test_kappa_constant_raters(self):
        assert quadratic_weighted_kappa([2, 2], [2, 2]) == 1.0


score6 = st.integers(0, 5)


@given(st.lists(st.tuples(score6, score6), min_size=2, max_size=40))
@settings(max_examples=50, deadline=None)
def test_property_ordinal_bounds(pairs):
    y_true = [a for a, _ in pairs]
    y_pred = [b for _, b in pairs]
    assert 0 <= mean_absolute_error(y_true, y_pred) <= 5
    assert 0 <= within_one_accuracy(y_true, y_pred) <= 1
    assert -1 <= kendall_tau(y_true, y_pred) <= 1
    assert quadratic_weighted_kappa(y_true, y_pred) <= 1.0 + 1e-12


@given(st.lists(score6, min_size=2, max_size=40))
@settings(max_examples=50, deadline=None)
def test_property_mae_zero_iff_exact(y):
    assert mean_absolute_error(y, y) == 0.0
    assert within_one_accuracy(y, y) == 1.0
