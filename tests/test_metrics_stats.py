"""Tests for statistical comparison utilities."""

import numpy as np
import pytest

from repro.metrics import accuracy
from repro.metrics.stats import (
    ConfidenceInterval,
    bootstrap_metric,
    mcnemar_test,
    mean_and_std,
    paired_sign_test,
)


class TestBootstrap:
    def test_interval_contains_estimate(self, rng):
        y_true = rng.integers(0, 2, size=200)
        y_pred = np.where(rng.random(200) < 0.8, y_true, 1 - y_true)
        ci = bootstrap_metric(y_true, y_pred, accuracy, num_resamples=300)
        assert ci.low <= ci.estimate <= ci.high
        assert ci.estimate in ci

    def test_interval_width_shrinks_with_n(self, rng):
        def make(n):
            y_true = rng.integers(0, 2, size=n)
            y_pred = np.where(rng.random(n) < 0.75, y_true, 1 - y_true)
            return bootstrap_metric(y_true, y_pred, accuracy, num_resamples=400)

        small = make(50)
        large = make(5000)
        assert (large.high - large.low) < (small.high - small.low)

    def test_deterministic_for_seed(self, rng):
        y_true = rng.integers(0, 2, size=100)
        y_pred = rng.integers(0, 2, size=100)
        a = bootstrap_metric(y_true, y_pred, accuracy, seed=5)
        b = bootstrap_metric(y_true, y_pred, accuracy, seed=5)
        assert (a.low, a.high) == (b.low, b.high)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_metric([], [], accuracy)
        with pytest.raises(ValueError):
            bootstrap_metric([1], [1], accuracy, confidence=1.5)

    def test_str_format(self):
        ci = ConfidenceInterval(0.5, 0.4, 0.6, 0.95)
        assert "[0.400, 0.600]" in str(ci)


class TestMcNemar:
    def test_identical_classifiers(self):
        y = [0, 1, 0, 1]
        stat, p = mcnemar_test(y, [0, 1, 1, 1], [0, 1, 1, 1])
        assert p == 1.0

    def test_clearly_different_classifiers(self, rng):
        y = rng.integers(0, 2, size=400)
        good = np.where(rng.random(400) < 0.95, y, 1 - y)
        bad = rng.integers(0, 2, size=400)
        _, p = mcnemar_test(y, good, bad)
        assert p < 0.01

    def test_symmetric(self, rng):
        y = rng.integers(0, 2, size=100)
        a = rng.integers(0, 2, size=100)
        b = rng.integers(0, 2, size=100)
        _, p_ab = mcnemar_test(y, a, b)
        _, p_ba = mcnemar_test(y, b, a)
        assert p_ab == pytest.approx(p_ba)

    def test_exact_small_sample_branch(self):
        y = [1] * 10
        a = [1] * 9 + [0]            # one A-only error
        b = [0] * 3 + [1] * 7        # three B-only errors (one shared? no)
        _, p = mcnemar_test(y, a, b)
        assert 0.0 < p <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mcnemar_test([1, 0], [1], [1, 0])


class TestSignTest:
    def test_all_wins_significant(self):
        a = [0.9] * 10
        b = [0.1] * 10
        wins_a, wins_b, p = paired_sign_test(a, b)
        assert wins_a == 10 and wins_b == 0
        assert p < 0.01

    def test_balanced_not_significant(self):
        a = [1, 0, 1, 0, 1, 0]
        b = [0, 1, 0, 1, 0, 1]
        _, _, p = paired_sign_test(a, b)
        assert p > 0.5

    def test_ties_dropped(self):
        wins_a, wins_b, p = paired_sign_test([1.0, 1.0], [1.0, 1.0])
        assert (wins_a, wins_b, p) == (0, 0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_sign_test([], [])


class TestMeanStd:
    def test_values(self):
        m, s = mean_and_std([1.0, 2.0, 3.0])
        assert m == 2.0
        assert s == pytest.approx(1.0)

    def test_single_value(self):
        assert mean_and_std([5.0]) == (5.0, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_and_std([])


class TestCompareMethods:
    def test_on_sweep(self, tiny_dataset):
        from repro.baselines import MajorityBaseline, SVMBaseline
        from repro.experiments import run_sweep
        from repro.metrics.stats import compare_methods

        methods = {
            "svm": lambda seed: SVMBaseline(explicit_dim=20, epochs=30, seed=seed),
            "majority": lambda seed: MajorityBaseline(),
        }
        result = run_sweep(tiny_dataset, methods, thetas=(1.0,), folds=3, k=5, seed=0)
        wins_a, wins_b, p = compare_methods(result, "svm", "majority")
        assert wins_a + wins_b <= 3
        assert 0.0 <= p <= 1.0
