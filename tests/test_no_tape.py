"""No-tape forward mode: constant-only ops, zero bookkeeping, exact logits.

The contract under test (docs/performance.md "No-tape inference"):
``repro.autograd.no_tape`` disables every piece of autograd bookkeeping —
no parent tuples, no backward closures, no ``requires_grad`` propagation,
and nothing for the op hooks (profiler / sanitizer / flame tags) to
observe — while forward *values* stay bit-identical to the taped path.
``InferenceSession`` runs all its forwards inside the context.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, no_tape, tape_enabled
from repro.autograd.kernels import gdu_layer
from repro.core import FakeDetector, FakeDetectorConfig
from repro.obs import OpProfiler
from repro.serve import ArticleRequest, InferenceSession


class TestContextSemantics:
    def test_ops_return_constants_inside(self, rng):
        a = Tensor(rng.standard_normal((3, 3)), requires_grad=True)
        with no_tape():
            assert not tape_enabled()
            out = (a @ a).tanh().sum()
        assert tape_enabled()
        assert out._parents == ()
        assert out._backward is None
        assert not out.requires_grad

    def test_values_match_taped_forward_exactly(self, rng):
        a = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        b = Tensor(rng.standard_normal((5, 2)), requires_grad=True)
        taped = ((a @ b).sigmoid() * 2.0).sum(axis=0)
        with no_tape():
            untaped = ((a @ b).sigmoid() * 2.0).sum(axis=0)
        np.testing.assert_array_equal(taped.data, untaped.data)

    def test_fused_kernel_values_match(self, rng):
        x = Tensor(rng.standard_normal((3, 5)), requires_grad=True)
        z = Tensor(rng.standard_normal((3, 4)))
        t = Tensor(rng.standard_normal((3, 4)))
        w_u = Tensor(rng.standard_normal((13, 4)), requires_grad=True)
        b_u = Tensor(rng.standard_normal(4), requires_grad=True)
        taped = gdu_layer(x, z, t, w_u, b_u)
        assert taped.requires_grad
        with no_tape():
            untaped = gdu_layer(x, z, t, w_u, b_u)
        np.testing.assert_array_equal(taped.data, untaped.data)
        assert not untaped.requires_grad

    def test_exception_safe_and_nestable(self):
        a = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(RuntimeError):
            with no_tape():
                with no_tape():
                    assert not tape_enabled()
                assert not tape_enabled()  # inner exit restores outer state
                raise RuntimeError("boom")
        assert tape_enabled()
        assert (a * 2).requires_grad

    def test_profiler_hook_sees_zero_ops(self, rng):
        """Regression: no tape nodes (and no hook events) inside the context."""
        a = Tensor(rng.standard_normal((3, 3)), requires_grad=True)
        with OpProfiler() as profiler:
            with no_tape():
                ((a @ a).tanh() + 1.0).sum()
        assert profiler.snapshot()["forward"] == {}


@pytest.fixture(scope="module")
def fitted(request):
    dataset = request.getfixturevalue("tiny_dataset")
    split = request.getfixturevalue("tiny_split")
    config = FakeDetectorConfig(
        epochs=3, explicit_dim=24, vocab_size=400, max_seq_len=10,
        embed_dim=4, rnn_hidden=6, latent_dim=4, gdu_hidden=8, seed=0,
    )
    return FakeDetector(config).fit(dataset, split), dataset


@pytest.fixture()
def requests_batch(fitted):
    _, dataset = fitted
    template = next(iter(dataset.articles.values()))
    return [
        ArticleRequest("q1", "secret rigged hoax conspiracy scandal",
                       template.creator_id, list(template.subject_ids)),
        ArticleRequest("q2", "census report data percent analysis"),
    ]


class TestSessionIntegration:
    def test_full_graph_logits_bit_identical_to_taped_forward(self, fitted):
        """On a trained checkpoint, no_tape changes nothing about the values."""
        detector, _ = fitted
        model = detector.model
        model.eval()
        taped_logits, taped_states = model.forward_with_states(
            detector.features, detector.graph
        )
        with no_tape():
            untaped_logits, untaped_states = model.forward_with_states(
                detector.features, detector.graph
            )
        for kind in taped_logits:
            np.testing.assert_array_equal(
                taped_logits[kind].data, untaped_logits[kind].data
            )
            assert untaped_logits[kind]._backward is None
        for kind in taped_states:
            np.testing.assert_array_equal(
                taped_states[kind].data, untaped_states[kind].data
            )

    def test_session_logits_bit_identical_to_taped_forward(
        self, fitted, requests_batch
    ):
        """The no-tape serving forward reproduces the taped logits exactly."""
        detector, _ = fitted
        session = InferenceSession(detector)
        probs_untaped = np.array(
            [p.proba for p in session.predict(requests_batch, return_proba=True)]
        )
        # Same forward, tape enabled: encode through the same cache, then
        # run the model stack without the no_tape context.
        model = detector.model
        model.eval()
        explicit, sequences = session._encode_batch(
            [r.text for r in requests_batch]
        )
        hidden = model.gdu_article.hidden_dim
        z = np.zeros((len(requests_batch), hidden))
        t = np.zeros((len(requests_batch), hidden))
        for i, req in enumerate(requests_batch):
            rows = [session._subject_rows[s] for s in req.subject_ids
                    if s in session._subject_rows]
            if rows:
                z[i] = session._h_subject[rows].mean(axis=0)
            row = session._creator_rows.get(req.creator_id)
            if row is not None:
                t[i] = session._h_creator[row]
        x = model.hflu_article(explicit, sequences)
        h = model.gdu_article(x, Tensor(z), Tensor(t))
        taped_logits = model.head_article(h)
        assert taped_logits.requires_grad  # this one really is on the tape
        preds = session.predict(requests_batch, return_proba=False)
        np.testing.assert_array_equal(
            np.array([p.class_index for p in preds]),
            taped_logits.data.argmax(axis=1),
        )
        # Bit-identical logits ⇒ bit-identical softmax through the same code.
        from repro.autograd import functional as F

        np.testing.assert_array_equal(
            probs_untaped, F.softmax(Tensor(taped_logits.data)).data
        )

    def test_session_creates_no_tape_nodes(self, fitted, requests_batch):
        """Regression: the profiler sees zero ops across init and predict."""
        detector, _ = fitted
        with OpProfiler() as profiler:
            session = InferenceSession(detector)
            session.predict(requests_batch)
            session.predict(requests_batch)  # warm/cached path too
        assert profiler.snapshot()["forward"] == {}
