"""Trace context: traceparent round-trips, malformed headers, contextvars."""

import email.message

import pytest

from repro.obs import (
    REQUEST_ID_HEADER,
    TRACEPARENT_HEADER,
    TraceContext,
    current_context,
    extract_context,
    inject,
    new_request_id,
    new_trace_id,
    reset_context,
    set_context,
)


class TestIds:
    def test_trace_id_is_32_lower_hex(self):
        tid = new_trace_id()
        assert len(tid) == 32
        int(tid, 16)
        assert tid == tid.lower()

    def test_request_id_is_16_lower_hex(self):
        rid = new_request_id()
        assert len(rid) == 16
        int(rid, 16)

    def test_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(64)}) == 64


class TestTraceparent:
    def test_round_trip_with_span(self):
        ctx = TraceContext(trace_id="ab" * 16, span_id=0x1234)
        again = TraceContext.from_traceparent(ctx.to_traceparent())
        assert again.trace_id == ctx.trace_id
        assert again.span_id == 0x1234

    def test_root_context_encodes_zero_span(self):
        ctx = TraceContext.new()
        header = ctx.to_traceparent()
        assert header == f"00-{ctx.trace_id}-{'0' * 16}-01"
        # Zero span id decodes back to "no parent".
        assert TraceContext.from_traceparent(header).span_id is None

    def test_span_id_masked_to_64_bits(self):
        ctx = TraceContext(trace_id="cd" * 16, span_id=2**64 + 5)
        assert TraceContext.from_traceparent(ctx.to_traceparent()).span_id == 5

    @pytest.mark.parametrize("header", [
        "",
        "garbage",
        "00-zz" + "0" * 30 + "-" + "1" * 16 + "-01",   # non-hex trace
        "00-" + "a" * 31 + "-" + "1" * 16 + "-01",     # short trace id
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",     # all-zero trace id
        "00-" + "a" * 32 + "-" + "1" * 15 + "-01",     # short span id
        "00-" + "a" * 32 + "-" + "1" * 16,             # missing flags
    ])
    def test_malformed_headers_return_none(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_case_and_whitespace_tolerated(self):
        header = f"  00-{'AB' * 16}-{'00000000000000FF'}-01  "
        ctx = TraceContext.from_traceparent(header)
        assert ctx.trace_id == "ab" * 16
        assert ctx.span_id == 0xFF

    def test_dict_round_trip_keeps_baggage(self):
        ctx = TraceContext.new(tenant="t1").child(42)
        again = TraceContext.from_dict(ctx.to_dict())
        assert again == ctx
        assert again.baggage_dict() == {"tenant": "t1"}


class TestHeaderPlumbing:
    def test_inject_extract_round_trip(self):
        ctx = TraceContext.new().child(99)
        headers = inject(ctx, {})
        assert TRACEPARENT_HEADER in headers
        again = extract_context(headers)
        assert again.trace_id == ctx.trace_id
        assert again.span_id == 99

    def test_extract_is_case_insensitive(self):
        ctx = TraceContext(trace_id="ef" * 16, span_id=7)
        assert extract_context({"Traceparent": ctx.to_traceparent()}).span_id == 7

    def test_extract_from_email_message_headers(self):
        """http.server exposes headers as email.message.Message objects."""
        ctx = TraceContext(trace_id="12" * 16, span_id=3)
        message = email.message.Message()
        message["Traceparent"] = ctx.to_traceparent()
        message[REQUEST_ID_HEADER] = "deadbeefdeadbeef"
        assert extract_context(message).trace_id == ctx.trace_id

    def test_extract_missing_or_bad_header_is_none(self):
        assert extract_context({}) is None
        assert extract_context({TRACEPARENT_HEADER: "nope"}) is None


class TestAmbientContext:
    def test_set_get_reset(self):
        assert current_context() is None
        ctx = TraceContext.new()
        token = set_context(ctx)
        try:
            assert current_context() is ctx
        finally:
            reset_context(token)
        assert current_context() is None

    def test_nested_binding_restores_outer(self):
        outer, inner = TraceContext.new(), TraceContext.new()
        t1 = set_context(outer)
        t2 = set_context(inner)
        assert current_context() is inner
        reset_context(t2)
        assert current_context() is outer
        reset_context(t1)

    def test_threads_do_not_share_context(self):
        import threading

        seen = {}
        token = set_context(TraceContext.new())
        try:
            def probe():
                seen["ctx"] = current_context()

            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        finally:
            reset_context(token)
        assert seen["ctx"] is None
