"""Drift telemetry: PSI/KL math, baseline round-trips, monitor edges."""

import json
import math

import numpy as np
import pytest

from repro.obs import (
    BASELINE_SCHEMA,
    BaselineProfile,
    DriftMonitor,
    MetricsRegistry,
    SloMonitor,
    bernoulli_psi,
    drift_slo_rule,
    kl_divergence,
    load_baseline,
    psi,
)


class TestDivergences:
    def test_identical_distributions_are_zero(self):
        assert psi([0.2, 0.3, 0.5], [0.2, 0.3, 0.5]) == pytest.approx(0.0, abs=1e-9)
        assert kl_divergence([0.5, 0.5], [0.5, 0.5]) == pytest.approx(0.0, abs=1e-9)
        assert bernoulli_psi([0.1, 0.9], [0.1, 0.9]) == pytest.approx(0.0, abs=1e-9)

    def test_counts_and_probs_are_equivalent(self):
        assert psi([2, 3, 5], [20, 30, 50]) == pytest.approx(0.0, abs=1e-9)

    def test_psi_known_value(self):
        # Hand-computed: sum((a-e)*ln(a/e)) for e=(.5,.5), a=(.8,.2).
        expected = (0.8 - 0.5) * math.log(0.8 / 0.5) + (0.2 - 0.5) * math.log(
            0.2 / 0.5
        )
        assert psi([0.5, 0.5], [0.8, 0.2]) == pytest.approx(expected)

    def test_kl_known_value(self):
        expected = 0.8 * math.log(0.8 / 0.5) + 0.2 * math.log(0.2 / 0.5)
        assert kl_divergence([0.5, 0.5], [0.8, 0.2]) == pytest.approx(expected)

    def test_psi_is_symmetric_kl_is_not(self):
        e, a = [0.7, 0.3], [0.3, 0.7]
        assert psi(e, a) == pytest.approx(psi(a, e))
        assert kl_divergence(e, a) != pytest.approx(kl_divergence([0.6, 0.4], a))

    def test_empty_bin_is_finite(self):
        value = psi([0.5, 0.5], [1.0, 0.0])
        assert np.isfinite(value) and value > 0.25

    def test_flipped_distribution_breaches_rule_of_thumb(self):
        assert psi([0.9, 0.1], [0.1, 0.9]) > 0.25

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            psi([0.5, 0.5], [1.0])
        with pytest.raises(ValueError):
            kl_divergence([0.5, 0.5], [1.0])
        with pytest.raises(ValueError):
            bernoulli_psi([0.5], [0.5, 0.5])

    def test_bernoulli_psi_empty_features(self):
        assert bernoulli_psi([], []) == 0.0

    def test_bernoulli_psi_grows_with_rate_gap(self):
        near = bernoulli_psi([0.5, 0.5], [0.55, 0.5])
        far = bernoulli_psi([0.5, 0.5], [0.95, 0.5])
        assert 0.0 < near < far


def make_baseline(num_classes=2, num_features=3):
    rng = np.random.default_rng(0)
    logits = rng.normal(size=(200, num_classes))
    explicit = (rng.random((200, num_features)) > 0.5).astype(float)
    return BaselineProfile.from_observations(explicit, logits)


class TestBaselineProfile:
    def test_from_observations_normalizes(self):
        baseline = make_baseline()
        assert baseline.samples == 200
        assert sum(baseline.class_probs) == pytest.approx(1.0)
        assert sum(baseline.confidence_probs) == pytest.approx(1.0)
        assert all(0.0 <= r <= 1.0 for r in baseline.feature_rates)

    def test_dict_round_trip(self):
        baseline = make_baseline()
        doc = json.loads(json.dumps(baseline.to_dict()))
        assert doc["schema"] == BASELINE_SCHEMA
        again = BaselineProfile.from_dict(doc)
        assert again == baseline

    def test_bad_schema_rejected(self):
        doc = make_baseline().to_dict()
        doc["schema"] = "repro.obs.drift_baseline/9"
        with pytest.raises(ValueError, match="schema"):
            BaselineProfile.from_dict(doc)

    def test_save_load_round_trip(self, tmp_path):
        baseline = make_baseline()
        path = baseline.save(tmp_path)
        assert path.name == "drift_baseline.json"
        assert BaselineProfile.load(path) == baseline
        assert load_baseline(tmp_path) == baseline

    def test_load_baseline_missing_is_none(self, tmp_path):
        assert load_baseline(tmp_path) is None


class _Events:
    """Minimal logger double capturing (level, event) pairs."""

    def __init__(self):
        self.calls = []

    def warning(self, event, **attrs):
        self.calls.append(("warning", event, attrs))

    def info(self, event, **attrs):
        self.calls.append(("info", event, attrs))


class TestDriftMonitor:
    def _stable_batch(self, n=60, seed=1):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(n, 2))
        explicit = (rng.random((n, 3)) > 0.5).astype(float)
        return explicit, logits

    def _shifted_batch(self, n=60):
        # Every prediction lands in class 1 at extreme confidence.
        logits = np.tile([[-9.0, 9.0]], (n, 1))
        explicit = np.ones((n, 3))
        return explicit, logits

    def test_below_min_samples_no_verdict(self):
        monitor = DriftMonitor(make_baseline(), min_samples=50)
        explicit, logits = self._stable_batch(n=10)
        monitor.observe_batch(explicit, logits)
        summary = monitor.evaluate()
        assert summary["class_psi"] is None
        assert summary["breached"] is False

    def test_stable_stream_stays_green(self):
        monitor = DriftMonitor(make_baseline(), min_samples=50, threshold=0.25)
        for seed in range(3):
            monitor.observe_batch(*self._stable_batch(seed=seed + 10))
        summary = monitor.evaluate()
        assert summary["class_psi"] < 0.25
        assert not monitor.breached

    def test_shifted_stream_breaches_and_recovers_edge_triggered(self):
        events = _Events()
        monitor = DriftMonitor(
            make_baseline(), window=120, min_samples=50, threshold=0.25,
            logger=events,
        )
        monitor.observe_batch(*self._shifted_batch())
        monitor.observe_batch(*self._shifted_batch())
        assert monitor.breached
        # Stable traffic evicts the shifted batches out of the window.
        for seed in range(4):
            monitor.observe_batch(*self._stable_batch(seed=seed + 20))
        assert not monitor.breached
        edges = [(level, event) for level, event, _ in events.calls]
        assert edges == [("warning", "breach"), ("info", "recover")]

    def test_window_evicts_whole_batches(self):
        monitor = DriftMonitor(make_baseline(), window=100, min_samples=10)
        for seed in range(5):
            monitor.observe_batch(*self._stable_batch(n=60, seed=seed))
        assert monitor.evaluate()["samples"] <= 100 + 60

    def test_gauges_exported_with_shard_suffix(self):
        registry = MetricsRegistry()
        monitor = DriftMonitor(
            make_baseline(), min_samples=10, registry=registry, shard=2
        )
        monitor.observe_batch(*self._stable_batch())
        snapshot = registry.snapshot()
        assert "drift.class_psi.shard2" in snapshot
        assert "drift.confidence_psi.shard2" in snapshot
        assert "drift.samples.shard2" in snapshot

    def test_slo_rule_degrades_health(self):
        slo = SloMonitor([drift_slo_rule(0.25, min_samples=1)])
        monitor = DriftMonitor(
            make_baseline(), min_samples=10, threshold=0.25, slo=slo
        )
        monitor.observe_batch(*self._shifted_batch())
        slo.evaluate()
        assert "drift_psi" in slo.breached_rules
        assert slo.health()["status"] == "degraded"

    def test_health_reports_degraded_on_breach(self):
        monitor = DriftMonitor(make_baseline(), min_samples=10, threshold=0.25)
        monitor.observe_batch(*self._shifted_batch())
        health = monitor.health()
        assert health["status"] == "degraded"
        assert health["drift"]["breached"] is True

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            DriftMonitor(make_baseline(), window=0)
