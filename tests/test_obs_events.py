"""Structured event logger: levels, namespaces, sinks, JSONL round trip."""

import io
import json

import pytest

from repro.obs import (
    Event,
    EventLogger,
    HumanSink,
    JsonlSink,
    configure_logging,
    get_logger,
    read_events,
    reset_logging,
)


class ListSink:
    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


@pytest.fixture(autouse=True)
def _fresh_global_logger():
    reset_logging()
    yield
    reset_logging()


class TestLevels:
    def test_below_threshold_is_dropped(self):
        sink = ListSink()
        logger = EventLogger(sinks=[sink], level="info")
        logger.debug("noise", x=1)
        logger.info("signal", x=2)
        assert [e.name for e in sink.events] == ["signal"]

    def test_set_level_opens_debug(self):
        sink = ListSink()
        logger = EventLogger(sinks=[sink], level="info")
        logger.set_level("debug")
        logger.debug("noise")
        assert len(sink.events) == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            EventLogger(level="loud")

    def test_error_always_passes_default(self):
        sink = ListSink()
        logger = EventLogger(sinks=[sink], level="warning")
        logger.error("boom", detail="x")
        assert sink.events[0].level == "error"


class TestNamespaces:
    def test_bind_prefixes_names(self):
        sink = ListSink()
        logger = EventLogger(sinks=[sink], level="info")
        logger.bind("train").info("epoch", loss=1.0)
        assert sink.events[0].name == "train.epoch"

    def test_nested_bind(self):
        sink = ListSink()
        logger = EventLogger(sinks=[sink], level="info")
        logger.bind("serve").bind("queue").info("batch")
        assert sink.events[0].name == "serve.queue.batch"

    def test_namespace_filter(self):
        sink = ListSink()
        logger = EventLogger(sinks=[sink], level="info", namespaces=["train"])
        logger.bind("train").info("epoch")
        logger.bind("serve").info("batch")
        assert [e.name for e in sink.events] == ["train.epoch"]

    def test_filter_matches_whole_components(self):
        sink = ListSink()
        logger = EventLogger(sinks=[sink], level="info", namespaces=["train"])
        logger.bind("training_extra").info("epoch")  # not under "train."
        assert sink.events == []

    def test_children_follow_root_reconfiguration(self):
        sink = ListSink()
        logger = EventLogger(sinks=[sink], level="info")
        child = logger.bind("train")
        logger.set_level("error")
        child.info("epoch")
        assert sink.events == []


class TestSinks:
    def test_human_sink_renders_fields(self):
        stream = io.StringIO()
        logger = EventLogger(sinks=[HumanSink(stream)], level="info")
        logger.info("train.epoch", epoch=3, loss=0.421875)
        line = stream.getvalue()
        assert "train.epoch" in line
        assert "epoch=3" in line
        assert "loss=0.421875" in line

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        logger = EventLogger(sinks=[JsonlSink(path)], level="debug")
        logger.debug("pipeline.tokenize", docs=12)
        logger.info("train.epoch", epoch=1, loss=2.5)
        logger.close()

        events = read_events(path)
        assert [e.name for e in events] == ["pipeline.tokenize", "train.epoch"]
        assert events[1].fields == {"epoch": 1, "loss": 2.5}
        assert events[1].level == "info"
        # Every line is independently parseable JSON with a type tag.
        for line in path.read_text().splitlines():
            assert json.loads(line)["type"] == "event"

    def test_event_dict_round_trip(self):
        event = Event(name="a.b", level="warning", ts=123.5, fields={"k": "v"})
        clone = Event.from_dict(json.loads(json.dumps(event.to_dict())))
        assert clone == event

    def test_fanout_to_multiple_sinks(self, tmp_path):
        listed = ListSink()
        path = tmp_path / "e.jsonl"
        logger = EventLogger(sinks=[listed, JsonlSink(path)], level="info")
        logger.info("x", a=1)
        logger.close()
        assert len(listed.events) == 1
        assert len(read_events(path)) == 1


class TestGlobalLogger:
    def test_get_logger_is_a_singleton_root(self):
        assert get_logger() is get_logger()

    def test_bound_children_share_sinks(self):
        sink = ListSink()
        configure_logging(sinks=[sink])
        get_logger("train").info("epoch", loss=1.0)
        assert sink.events[0].name == "train.epoch"

    def test_configure_level_and_jsonl(self, tmp_path):
        path = tmp_path / "g.jsonl"
        configure_logging(level="debug", sinks=[], jsonl_path=path)
        get_logger("serve").debug("batch", size=4)
        get_logger().close()
        events = read_events(path)
        assert events[0].name == "serve.batch"

    def test_configure_namespaces_silences_others(self):
        sink = ListSink()
        configure_logging(sinks=[sink], namespaces=["train"])
        get_logger("serve").info("batch")
        get_logger("train").info("epoch")
        assert [e.name for e in sink.events] == ["train.epoch"]
