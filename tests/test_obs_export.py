"""Metric exporters: Prometheus text round-trip, JSON snapshot schema,
periodic flushing and the /metrics + /healthz scrape endpoint."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
    PeriodicExporter,
    MetricsServer,
    SNAPSHOT_SCHEMA,
    json_snapshot,
    parse_prometheus,
    prometheus_name,
    render_prometheus,
    write_json_snapshot,
    write_prometheus,
)
from repro.obs.export import escape_label_value, unescape_label_value


def _registry():
    reg = MetricsRegistry()
    reg.counter("serve.requests").inc(42)
    reg.gauge("train.loss").set(1.25)
    reg.histogram("serve.latency_seconds").observe_many([0.1, 0.2, 0.3, 0.4])
    return reg


class TestNames:
    def test_dots_become_underscores(self):
        assert prometheus_name("serve.latency_seconds") == (
            "repro_serve_latency_seconds"
        )

    def test_custom_prefix(self):
        assert prometheus_name("a.b", prefix="x_") == "x_a_b"

    def test_leading_digit_guarded(self):
        assert prometheus_name("9lives", prefix="")[0] == "_"


class TestLabelEscaping:
    @pytest.mark.parametrize("hostile", [
        'plain',
        'va"l\\ue\nx',
        '\\\\double\\',
        '"',
        'newline\nonly',
    ])
    def test_round_trip(self, hostile):
        assert unescape_label_value(escape_label_value(hostile)) == hostile

    def test_escaped_text_is_single_line(self):
        assert "\n" not in escape_label_value("a\nb")


class TestPrometheusRoundTrip:
    def test_counter_gets_total_suffix(self):
        samples = parse_prometheus(render_prometheus(_registry()))
        by_name = {s.name: s for s in samples}
        assert by_name["repro_serve_requests_total"].value == 42.0

    def test_gauge_value(self):
        samples = parse_prometheus(render_prometheus(_registry()))
        by_name = {s.name: s for s in samples}
        assert by_name["repro_train_loss"].value == 1.25

    def test_histogram_summary_quantiles_and_totals(self):
        samples = parse_prometheus(render_prometheus(_registry()))
        quantiles = {
            s.labels["quantile"]: s.value
            for s in samples
            if s.name == "repro_serve_latency_seconds"
        }
        assert set(quantiles) == {"0.5", "0.95", "0.99"}
        assert quantiles["0.99"] == pytest.approx(0.4)
        by_name = {s.name: s for s in samples}
        assert by_name["repro_serve_latency_seconds_sum"].value == pytest.approx(1.0)
        assert by_name["repro_serve_latency_seconds_count"].value == 4.0
        assert by_name["repro_serve_latency_seconds_min"].value == pytest.approx(0.1)
        assert by_name["repro_serve_latency_seconds_max"].value == pytest.approx(0.4)

    def test_constant_labels_survive_hostile_values(self):
        hostile = 'va"l\\ue\nx'
        text = render_prometheus(_registry(), labels={"host": hostile})
        for sample in parse_prometheus(text):
            assert sample.labels["host"] == hostile

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("!!! not exposition format")

    def test_render_ends_with_newline(self):
        assert render_prometheus(_registry()).endswith("\n")


class TestJsonSnapshot:
    def test_schema_and_metrics(self):
        snap = json_snapshot(_registry(), labels={"job": "test"})
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["labels"] == {"job": "test"}
        assert snap["metrics"]["serve.requests"] == 42.0
        assert snap["metrics"]["serve.latency_seconds.count"] == 4.0
        assert snap["metrics"]["serve.latency_seconds.window"] == 4.0

    def test_write_is_valid_json_file(self, tmp_path):
        path = write_json_snapshot(_registry(), tmp_path / "metrics.json")
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == SNAPSHOT_SCHEMA
        assert not list(tmp_path.glob("*.tmp"))  # atomic write left no debris

    def test_write_prometheus_file_parses(self, tmp_path):
        path = write_prometheus(_registry(), tmp_path / "metrics.prom")
        assert parse_prometheus(path.read_text())


class TestPeriodicExporter:
    def test_flush_on_stop(self, tmp_path):
        reg = _registry()
        exporter = PeriodicExporter(reg, tmp_path / "m.prom", interval=60.0)
        exporter.start()
        exporter.stop()
        assert exporter.flushes >= 1
        assert parse_prometheus((tmp_path / "m.prom").read_text())

    def test_interval_flushes(self, tmp_path):
        reg = _registry()
        exporter = PeriodicExporter(reg, tmp_path / "m.json", interval=0.02,
                                    fmt="json")
        with exporter:
            threading.Event().wait(0.2)
        assert exporter.flushes >= 2  # at least one interval + the final one
        assert json.loads(
            (tmp_path / "m.json").read_text()
        )["schema"] == SNAPSHOT_SCHEMA

    def test_rejects_bad_params(self, tmp_path):
        with pytest.raises(ValueError):
            PeriodicExporter(_registry(), tmp_path / "m", interval=0.0)
        with pytest.raises(ValueError):
            PeriodicExporter(_registry(), tmp_path / "m", fmt="xml")


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=5.0) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read()


class TestMetricsServer:
    def test_metrics_endpoint_serves_exposition_text(self):
        with MetricsServer(_registry()) as server:
            status, headers, body = _get(f"{server.url}/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        names = {s.name for s in parse_prometheus(body.decode())}
        assert "repro_serve_requests_total" in names

    def test_healthz_ok_by_default(self):
        with MetricsServer(_registry()) as server:
            status, _, body = _get(f"{server.url}/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0.0

    def test_healthz_degraded_is_503(self):
        health = lambda: {"status": "degraded", "breached": ["latency_p95"]}
        with MetricsServer(_registry(), health=health) as server:
            status, _, body = _get(f"{server.url}/healthz")
        assert status == 503
        assert json.loads(body)["breached"] == ["latency_p95"]

    def test_unknown_route_is_404(self):
        with MetricsServer(_registry()) as server:
            status, _, _ = _get(f"{server.url}/nope")
        assert status == 404

    def test_ephemeral_port_reported(self):
        with MetricsServer(_registry()) as server:
            assert server.port > 0
