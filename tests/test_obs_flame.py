"""Sampling profiler: tagging, folded stacks, merge/diff, SVG, fork safety."""

import json
import multiprocessing
import threading
import time

import pytest

from repro.autograd.tensor import Tensor, set_op_tag_hook
from repro.obs import (
    PROFILE_DIFF_SCHEMA,
    PROFILE_SCHEMA,
    Profile,
    SamplingProfiler,
    Tracer,
    current_tags,
    diff_profiles,
    install_tracer,
    merge_profiles,
    render_diff,
    render_flamegraph_svg,
    render_top,
    tag,
    trace,
    uninstall_tracer,
    write_flamegraph,
)
from repro.obs.flame import pop_tag, push_tag

pytestmark = pytest.mark.profile


def _busy(seconds):
    """Burn CPU in a recognizably named frame until ``seconds`` elapse."""
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(i * i for i in range(500))
    return total


class TestTags:
    def test_tag_nests_and_unwinds(self):
        assert current_tags() == ()
        with tag("outer"):
            assert current_tags() == ("outer",)
            with tag("inner"):
                assert current_tags() == ("outer", "inner")
            assert current_tags() == ("outer",)
        assert current_tags() == ()

    def test_tags_are_per_thread(self):
        seen = {}

        def other():
            seen["before"] = current_tags()
            with tag("other-thread"):
                seen["during"] = current_tags()

        with tag("main-thread"):
            worker = threading.Thread(target=other, name="t", daemon=True)
            worker.start()
            worker.join(5.0)
        assert seen["before"] == ()
        assert seen["during"] == ("other-thread",)

    def test_unbalanced_pop_is_noop(self):
        pop_tag()  # must not raise on an empty stack
        push_tag("x")
        pop_tag()
        pop_tag()
        assert current_tags() == ()


class TestSamplingProfiler:
    def test_samples_busy_thread_with_tags(self):
        profiler = SamplingProfiler(interval=0.002)
        with profiler:
            with tag("hot.section"):
                _busy(0.15)
        profile = profiler.snapshot()
        assert profile.samples > 5
        assert profiler.sample_errors == 0
        tagged = [s for s in profile.stacks if "hot.section" in s]
        assert tagged, profile.folded()[:500]
        # Tag sits between the thread name and the python frames.
        stack = tagged[0].split(";")
        busy = [i for i, f in enumerate(stack) if f.endswith("._busy")]
        assert busy and stack.index("hot.section") < busy[0]

    def test_double_start_rejected(self):
        profiler = SamplingProfiler(interval=0.01)
        profiler.start()
        try:
            with pytest.raises(RuntimeError):
                profiler.start()
        finally:
            profiler.stop()

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)

    def test_effective_interval_tracks_wall_clock(self):
        profiler = SamplingProfiler(interval=0.002)
        with profiler:
            _busy(0.2)
        profile = profiler.snapshot()
        assert profile.duration_s == pytest.approx(0.2, abs=0.1)
        # self-seconds across all frames ≈ sampled wall time
        assert sum(profile.self_seconds().values()) == pytest.approx(
            profile.duration_s, rel=0.01
        )

    def test_snapshot_while_running_and_reset(self):
        profiler = SamplingProfiler(interval=0.002)
        with profiler:
            _busy(0.1)
            first = profiler.snapshot()
            profiler.reset()
            _busy(0.05)
            second = profiler.snapshot()
        assert first.samples > 0
        assert second.samples > 0
        assert second.duration_s < first.duration_s + 0.04

    def test_span_names_tag_samples(self):
        tracer = install_tracer(Tracer())
        profiler = SamplingProfiler(interval=0.002)
        try:
            with profiler:
                with trace("train.step"):
                    _busy(0.15)
        finally:
            uninstall_tracer()
        profile = profiler.snapshot()
        assert any("train.step" in s for s in profile.stacks), (
            profile.folded()[:500]
        )

    def test_restores_previous_hooks_on_stop(self):
        calls = []
        previous = set_op_tag_hook((lambda op: calls.append(op), lambda: None))
        try:
            profiler = SamplingProfiler(interval=0.01)
            with profiler:
                pass
            (Tensor([1.0], requires_grad=True) * 2.0).backward()
            assert calls  # the pre-existing hook is back in place
        finally:
            set_op_tag_hook(previous)


class TestOpTagHook:
    def test_enter_exit_bracket_forward_and_backward(self):
        events = []
        previous = set_op_tag_hook(
            (lambda op: events.append(("enter", op)),
             lambda: events.append(("exit", None)))
        )
        try:
            out = Tensor([2.0], requires_grad=True) * Tensor([3.0])
            out.backward()
        finally:
            set_op_tag_hook(previous)
        entered = [op for kind, op in events if kind == "enter"]
        assert "mul" in entered
        # Balanced: every enter has a matching exit.
        assert len(events) == 2 * len(entered)

    def test_hook_cleared_leaves_fast_path(self):
        previous = set_op_tag_hook(None)
        try:
            out = Tensor([2.0], requires_grad=True) * Tensor([3.0])
            out.backward()  # no hooks: must run the undecorated path
        finally:
            set_op_tag_hook(previous)


class TestProfile:
    def _profile(self, stacks, interval=0.01):
        return Profile(
            stacks=dict(stacks),
            samples=sum(stacks.values()),
            duration_s=interval * sum(stacks.values()),
            interval_s=interval,
        )

    def test_round_trip(self, tmp_path):
        profile = self._profile({"a;b;c": 3, "a;b": 1})
        clone = Profile.from_dict(profile.to_dict())
        assert clone.stacks == profile.stacks
        assert clone.to_dict()["schema"] == PROFILE_SCHEMA
        path = profile.save(tmp_path / "p.json")
        assert Profile.load(path).stacks == profile.stacks

    def test_rejects_foreign_schema(self):
        with pytest.raises(ValueError):
            Profile.from_dict({"schema": "repro.obs.run/1"})

    def test_folded_round_trip(self):
        profile = self._profile({"a;b;c": 3, "x": 2})
        text = profile.folded()
        assert "a;b;c 3" in text.splitlines()
        clone = Profile.from_folded(text)
        assert clone.stacks == profile.stacks
        assert clone.samples == profile.samples

    def test_self_and_total_counts(self):
        profile = self._profile({"a;b;c": 3, "a;b": 2, "a;c": 1})
        selfs = profile.self_counts()
        assert selfs == {"c": 4, "b": 2}
        totals = profile.total_counts()
        assert totals["a"] == 6
        assert totals["b"] == 5
        assert totals["c"] == 4

    def test_subtract_clamps_and_rescales(self):
        later = self._profile({"a;b": 10, "a;c": 2})
        earlier = self._profile({"a;b": 4, "a;c": 5, "gone": 1})
        window = later.subtract(earlier)
        assert window.stacks == {"a;b": 6}
        assert window.samples == later.samples - earlier.samples
        assert window.interval_s == pytest.approx(
            window.duration_s / window.samples
        )

    def test_merge_prefixes_by_part(self):
        a = self._profile({"f;g": 2})
        b = self._profile({"f;h": 3})
        merged = merge_profiles(
            {"shard0;worker0": a, "frontend": b, "dead": None}
        )
        assert set(merged.stacks) == {"shard0;worker0;f;g", "frontend;f;h"}
        assert merged.samples == 5
        assert set(merged.meta["parts"]) == {"shard0;worker0", "frontend"}
        # a ";" in the part label becomes two tree levels
        assert merged.stacks["shard0;worker0;f;g"] == 2


class TestDiff:
    def test_diff_orders_by_absolute_delta(self):
        a = Profile(stacks={"r;hot": 10, "r;warm": 5}, samples=15,
                    duration_s=0.15, interval_s=0.01)
        b = Profile(stacks={"r;hot": 40, "r;warm": 6}, samples=46,
                    duration_s=0.46, interval_s=0.01)
        diff = diff_profiles(a, b)
        assert diff["schema"] == PROFILE_DIFF_SCHEMA
        assert diff["entries"][0]["frame"] == "hot"
        assert diff["entries"][0]["delta_seconds"] == pytest.approx(0.3)
        shares = {e["frame"]: e for e in diff["entries"]}
        assert shares["hot"]["b_share"] > shares["hot"]["a_share"]
        text = render_diff(diff)
        assert "hot" in text and "Δ" in text

    def test_limit(self):
        a = Profile(stacks={f"r;f{i}": i + 1 for i in range(10)}, samples=55)
        diff = diff_profiles(a, a, limit=3)
        assert len(diff["entries"]) == 3


class TestFlamegraphSvg:
    def _profile(self):
        return Profile(
            stacks={"main;train;gru": 60, "main;train;loss": 30, "main;io": 10},
            samples=100, duration_s=1.0, interval_s=0.01,
        )

    def test_renders_self_contained_svg(self):
        svg = render_flamegraph_svg(self._profile())
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "http://www.w3.org/2000/svg" in svg
        for frame in ("train", "gru", "loss"):
            assert frame in svg
        assert "href" not in svg and "script" not in svg  # no external deps

    def test_deterministic(self):
        assert render_flamegraph_svg(self._profile()) == render_flamegraph_svg(
            self._profile()
        )

    def test_escapes_markup_in_frame_names(self):
        profile = Profile(stacks={'m;<evil>&"x': 5}, samples=5)
        svg = render_flamegraph_svg(profile)
        assert "<evil>" not in svg
        assert "&lt;evil&gt;" in svg

    def test_differential_coloring_against_baseline(self):
        base = self._profile()
        current = Profile(
            stacks={"main;train;gru": 90, "main;train;loss": 5, "main;io": 5},
            samples=100, duration_s=1.0, interval_s=0.01,
        )
        svg = render_flamegraph_svg(current, baseline=base)
        assert "differential" in svg
        assert svg != render_flamegraph_svg(current)

    def test_write_flamegraph(self, tmp_path):
        out = write_flamegraph(
            self._profile(), tmp_path / "deep" / "flame.svg"
        )
        assert out.read_text().startswith("<svg")
        assert render_top(self._profile(), 2).count("\n") == 3


class TestRunRegistryProfiles:
    def test_save_and_load_by_run_id_and_path(self, tmp_path):
        from repro.obs import RunRegistry

        registry = RunRegistry(tmp_path)
        record = registry.record(kind="train", metrics={"loss": 1.0})
        profile = Profile(stacks={"a;b": 2}, samples=2)
        path = registry.save_profile(record.run_id, profile)
        assert path == registry.profile_path_for(record.run_id)
        assert registry.load_profile(record.run_id).stacks == {"a;b": 2}
        assert registry.load_profile(path).stacks == {"a;b": 2}
        with pytest.raises(FileNotFoundError):
            registry.load_profile("no-such-run")

    def test_profile_artifacts_invisible_to_list(self, tmp_path):
        from repro.obs import RunRegistry

        registry = RunRegistry(tmp_path)
        record = registry.record(kind="train", metrics={})
        registry.save_profile(record.run_id, Profile(stacks={"a": 1}, samples=1))
        assert [r.run_id for r in registry.list()] == [record.run_id]


def _fork_child_profile(out):
    """Forked child: inherited profiler state must reset, then restart."""
    profiler = _FORK_PROFILER
    inherited = profiler.snapshot()
    running_after_fork = profiler.running
    profiler.start()  # must not raise: the parent's sampler is not ours
    with tag("child.work"):
        _busy(0.1)
    profiler.stop()
    own = profiler.snapshot()
    out.put({
        "running_after_fork": running_after_fork,
        "inherited_samples": inherited.samples,
        "inherited_stacks": len(inherited.stacks),
        "own_samples": own.samples,
        "child_tagged": any("child.work" in s for s in own.stacks),
        "parent_frames": any("parent.work" in s for s in own.stacks),
    })


_FORK_PROFILER = SamplingProfiler(interval=0.002)


class TestForkSafety:
    def test_child_restarts_sampler_and_drops_parent_counts(self):
        """Mirror of the pid-salted span-id regression: a forked child
        inherits the profiler object and the parent's accumulated counts;
        it must come up not-running, discard those counts, and profile
        only its own stacks."""
        ctx = multiprocessing.get_context("fork")
        out = ctx.Queue()
        profiler = _FORK_PROFILER
        profiler.start()
        try:
            with tag("parent.work"):
                _busy(0.1)
                child = ctx.Process(target=_fork_child_profile, args=(out,))
                child.start()
                report = out.get(timeout=30.0)
                child.join(timeout=30.0)
        finally:
            profiler.stop()
        assert report["running_after_fork"] is False
        assert report["inherited_samples"] == 0
        assert report["inherited_stacks"] == 0
        assert report["own_samples"] > 0
        assert report["child_tagged"] is True
        assert report["parent_frames"] is False
        # The parent's own profile is unharmed by the child's lifecycle.
        parent = profiler.snapshot()
        assert parent.samples > 0
        assert any("parent.work" in s for s in parent.stacks)
