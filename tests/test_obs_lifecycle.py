"""Exit-time flushing: buffered obs writers drain without explicit close()."""

import json

from repro.obs import JsonlSink, Tracer, flush_all, flush_at_exit, trace
from repro.obs import install_tracer, uninstall_tracer
from repro.obs.lifecycle import unregister_flush


class TestFlushRegistry:
    def test_flush_all_calls_registered_flush(self):
        class Writer:
            flushed = 0

            def flush(self):
                self.flushed += 1

        writer = Writer()
        flush_at_exit(writer)
        try:
            assert flush_all() >= 1
            assert writer.flushed == 1
        finally:
            unregister_flush(writer)

    def test_unregistered_writer_not_flushed(self):
        class Writer:
            flushed = 0

            def flush(self):
                self.flushed += 1

        writer = Writer()
        flush_at_exit(writer)
        unregister_flush(writer)
        flush_all()
        assert writer.flushed == 0

    def test_flush_all_survives_broken_writers(self):
        class Broken:
            def flush(self):
                raise RuntimeError("disk gone")

        broken = Broken()
        flush_at_exit(broken)
        try:
            flush_all()  # must not raise
        finally:
            unregister_flush(broken)


class TestWriterRegistration:
    def test_jsonl_sink_flushes_via_registry(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        try:
            from repro.obs import Event

            sink.emit(Event(name="x", level="info", ts=0.0, fields={}))
            flush_all()
            lines = path.read_text().strip().splitlines()
            assert json.loads(lines[0])["name"] == "x"
        finally:
            sink.close()

    def test_tracer_stream_flushes_via_registry(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path=path)
        install_tracer(tracer)
        try:
            with trace("unit"):
                pass
            flush_all()
            types = [
                json.loads(line)["type"]
                for line in path.read_text().strip().splitlines()
            ]
            assert "span" in types
        finally:
            uninstall_tracer()
            tracer.close()

    def test_close_unregisters_tracer(self, tmp_path):
        tracer = Tracer(path=tmp_path / "t.jsonl")
        tracer.close()
        flush_all()  # a second flush on the closed file must be harmless
