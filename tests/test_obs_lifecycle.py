"""Exit-time flushing: buffered obs writers drain without explicit close()."""

import json
import subprocess
import sys

from repro.obs import JsonlSink, Tracer, flush_all, flush_at_exit, trace
from repro.obs import install_tracer, uninstall_tracer
from repro.obs.lifecycle import unregister_flush
from repro.obs.tracing import TraceStore, span_record


class TestFlushRegistry:
    def test_flush_all_calls_registered_flush(self):
        class Writer:
            flushed = 0

            def flush(self):
                self.flushed += 1

        writer = Writer()
        flush_at_exit(writer)
        try:
            assert flush_all() >= 1
            assert writer.flushed == 1
        finally:
            unregister_flush(writer)

    def test_unregistered_writer_not_flushed(self):
        class Writer:
            flushed = 0

            def flush(self):
                self.flushed += 1

        writer = Writer()
        flush_at_exit(writer)
        unregister_flush(writer)
        flush_all()
        assert writer.flushed == 0

    def test_flush_all_survives_broken_writers(self):
        class Broken:
            def flush(self):
                raise RuntimeError("disk gone")

        broken = Broken()
        flush_at_exit(broken)
        try:
            flush_all()  # must not raise
        finally:
            unregister_flush(broken)


class TestWriterRegistration:
    def test_jsonl_sink_flushes_via_registry(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        try:
            from repro.obs import Event

            sink.emit(Event(name="x", level="info", ts=0.0, fields={}))
            flush_all()
            lines = path.read_text().strip().splitlines()
            assert json.loads(lines[0])["name"] == "x"
        finally:
            sink.close()

    def test_tracer_stream_flushes_via_registry(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path=path)
        install_tracer(tracer)
        try:
            with trace("unit"):
                pass
            flush_all()
            types = [
                json.loads(line)["type"]
                for line in path.read_text().strip().splitlines()
            ]
            assert "span" in types
        finally:
            uninstall_tracer()
            tracer.close()

    def test_close_unregisters_tracer(self, tmp_path):
        tracer = Tracer(path=tmp_path / "t.jsonl")
        tracer.close()
        flush_all()  # a second flush on the closed file must be harmless


class TestTraceStoreLifecycle:
    def _span(self, trace_id):
        return span_record(
            "unit", trace_id=trace_id, parent_id=None, start=1.0, end=2.0
        )

    def test_store_flushes_via_registry(self, tmp_path):
        store = TraceStore(tmp_path)
        try:
            # One span sits inside the 50 ms buffered-write window …
            store.add_spans("ab12", [self._span("ab12")])
            flush_all()
            # … yet a registry flush makes it durable without close().
            lines = (tmp_path / "ab12.jsonl").read_text().strip().splitlines()
            assert json.loads(lines[0])["type"] == "trace_meta"
            assert json.loads(lines[1])["name"] == "unit"
        finally:
            store.close()

    def test_close_unregisters_store(self, tmp_path):
        store = TraceStore(tmp_path)
        store.add_spans("cd34", [self._span("cd34")])
        store.close()
        flush_all()  # must not touch the closed handles
        records = store.read("cd34")
        assert [r["type"] for r in records] == ["trace_meta", "span"]

    def test_short_lived_process_leaves_complete_trace_file(self, tmp_path):
        """Regression: a process that exits inside the flush window without
        calling close() must not leave a truncated (mid-line) trace file."""
        script = (
            "import sys; sys.path.insert(0, sys.argv[2])\n"
            "from repro.obs.tracing import TraceStore, span_record\n"
            "store = TraceStore(sys.argv[1])\n"
            "spans = [span_record('burst', trace_id='feed', parent_id=None,\n"
            "                     start=float(i), end=float(i) + 0.5,\n"
            "                     payload='x' * 512) for i in range(40)]\n"
            # First call flushes eagerly; the second burst lands inside the
            # 50 ms window and stays in the userspace buffer.
            "store.add_spans('feed', spans[:20])\n"
            "store.add_spans('feed', spans[20:])\n"
            # no store.close(): exit relies on the atexit flush registry
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path), "src"],
            cwd="/root/repo", capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        lines = (tmp_path / "feed.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in lines]  # every line complete
        assert len(records) == 41  # trace_meta + 40 spans
        assert all(r["name"] == "burst" for r in records[1:])
