"""Tape memory profiler: per-op byte attribution, live census, lifetimes."""

import gc

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core.gdu import GDU
from repro.obs import MemoryProfiler, render_memory


@pytest.fixture()
def profiler():
    prof = MemoryProfiler()
    prof.start()
    yield prof
    prof.stop()


class TestForwardAttribution:
    def test_matmul_bytes_attributed(self, profiler):
        a = Tensor(np.ones((8, 16)), requires_grad=True)
        b = Tensor(np.ones((16, 4)), requires_grad=True)
        out = a @ b
        snap = profiler.snapshot()
        assert snap["forward"]["matmul"]["allocs"] == 1.0
        assert snap["forward"]["matmul"]["bytes"] == float(out.data.nbytes)

    def test_fused_gdu_forward_is_one_op(self, profiler):
        rng = np.random.default_rng(0)
        gdu = GDU(input_dim=6, hidden_dim=4, rng=rng)  # fused by default
        x = Tensor(rng.normal(size=(5, 6)))
        z = Tensor(rng.normal(size=(5, 4)))
        t = Tensor(rng.normal(size=(5, 4)))
        gdu(x, z, t)
        forward = profiler.snapshot()["forward"]
        assert forward["gdu_layer"]["allocs"] == 1.0
        assert "matmul" not in forward  # the whole unit is one tape node

    def test_unrolled_gdu_forward_touches_expected_ops(self, profiler):
        rng = np.random.default_rng(0)
        gdu = GDU(input_dim=6, hidden_dim=4, rng=rng, fused=False)
        x = Tensor(rng.normal(size=(5, 6)))
        z = Tensor(rng.normal(size=(5, 4)))
        t = Tensor(rng.normal(size=(5, 4)))
        gdu(x, z, t)
        forward = profiler.snapshot()["forward"]
        assert "matmul" in forward and "sigmoid" in forward and "tanh" in forward
        for stats in forward.values():
            assert stats["bytes"] > 0
            assert stats["peak_live_bytes"] >= stats["live_bytes"]

    @pytest.mark.parametrize("fused", [True, False])
    def test_gdu_backward_attributes_grad_bytes(self, profiler, fused):
        rng = np.random.default_rng(1)
        gdu = GDU(input_dim=6, hidden_dim=4, rng=rng, fused=fused)
        x = Tensor(rng.normal(size=(5, 6)), requires_grad=True)
        z = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        t = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        gdu(x, z, t).sum().backward()
        backward = profiler.snapshot()["backward"]
        assert backward  # gradient arrays were produced
        key = "gdu_layer" if fused else "matmul"
        assert backward[key]["allocs"] >= 1.0
        assert profiler.total_bytes("backward") > 0


class TestLiveTracking:
    def test_freed_tensors_leave_the_census(self, profiler):
        a = Tensor(np.ones((32, 32)))
        b = Tensor(np.ones((32, 32)))
        out = a + b
        nbytes = out.data.nbytes
        assert profiler.live_bytes >= nbytes
        del out
        gc.collect()
        assert profiler.live_bytes < nbytes
        snap = profiler.snapshot()["forward"]["add"]
        assert snap["freed"] == 1.0
        assert snap["mean_lifetime_s"] >= 0.0

    def test_peak_live_is_high_water_mark(self, profiler):
        a = Tensor(np.ones((64, 64)))
        out = a * a
        peak_with_live = profiler.peak_live_bytes
        del out
        gc.collect()
        assert profiler.peak_live_bytes == peak_with_live
        assert profiler.live_bytes < peak_with_live

    def test_census_groups_by_shape_and_dtype(self, profiler):
        a = Tensor(np.ones((4, 4)))
        kept = [a + a, a + a, a + a]
        census = profiler.census()
        row = next(r for r in census if r["shape"] == [4, 4])
        assert row["count"] >= 3
        assert row["dtype"] == "float64"
        assert kept  # keep the outputs alive until the census was taken


class TestLifecycleAndRendering:
    def test_double_start_rejected(self):
        prof = MemoryProfiler().start()
        try:
            with pytest.raises(RuntimeError):
                prof.start()
        finally:
            prof.stop()

    def test_stop_uninstalls_hook(self):
        prof = MemoryProfiler().start()
        prof.stop()
        Tensor(np.ones(3)) + Tensor(np.ones(3))
        assert prof.snapshot()["forward"] == {}

    def test_composes_with_previous_hook(self):
        from repro.autograd.tensor import set_check_hook

        seen = []
        previous = set_check_hook(lambda phase, op, payload: seen.append(op))
        try:
            with MemoryProfiler() as prof:
                Tensor(np.ones(3)) + Tensor(np.ones(3))
            assert "add" in seen  # the chained-to hook still fired
            assert prof.snapshot()["forward"]["add"]["allocs"] == 1.0
        finally:
            set_check_hook(previous)

    def test_to_dict_and_render(self, profiler):
        Tensor(np.ones((8, 8))) + Tensor(np.ones((8, 8)))
        record = profiler.to_dict()
        assert record["type"] == "memory"
        text = render_memory(record)
        assert "memory profile" in text
        assert "add" in text
        assert profiler.table()  # instance wrapper agrees

    def test_reset_clears_counters(self, profiler):
        Tensor(np.ones(4)) + Tensor(np.ones(4))
        profiler.reset()
        assert profiler.total_bytes() == 0.0
        assert profiler.live_bytes == 0
        assert profiler.census() == []
