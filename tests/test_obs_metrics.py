"""Metrics registry: counter/gauge/histogram math, thread safety, and the
ServingMetrics facade's backward-compatible snapshot."""

import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    percentile,
    reset_registry,
)
from repro.serve.metrics import ServingMetrics


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.95) == 7.0

    def test_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]  # 1..100
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == pytest.approx(50.0, abs=1.0)
        assert percentile(values, 1.0) == 100.0


class TestPrimitives:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge_set_and_add(self):
        g = Gauge("x")
        g.set(10)
        g.add(-3)
        assert g.value == 7.0

    def test_histogram_snapshot_math(self):
        h = Histogram("x")
        h.observe_many([1.0, 2.0, 3.0, 4.0])
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 10.0
        assert snap["mean"] == 2.5
        assert snap["min"] == 1.0
        assert snap["max"] == 4.0
        assert snap["p50"] == 3.0  # nearest-rank over [1,2,3,4]

    def test_histogram_window_bounds_percentiles_not_count(self):
        h = Histogram("x", window=4)
        h.observe_many([100.0] * 4 + [1.0] * 4)  # old values evicted
        snap = h.snapshot()
        assert snap["count"] == 8  # cumulative
        assert snap["max"] == 1.0  # windowed
        assert snap["window"] == 4.0  # current occupancy backing percentiles
        assert h.values() == [1.0] * 4

    def test_histogram_snapshot_reports_window_occupancy(self):
        h = Histogram("x", window=100)
        h.observe_many([1.0, 2.0, 3.0])
        assert h.snapshot()["window"] == 3.0

    def test_histogram_reset(self):
        h = Histogram("x")
        h.observe(5.0)
        h.reset()
        assert h.count == 0
        assert h.snapshot()["max"] == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_flattens_histograms(self):
        reg = MetricsRegistry()
        reg.counter("req").inc(3)
        reg.gauge("depth").set(2)
        reg.histogram("lat").observe(0.5)
        snap = reg.snapshot()
        assert snap["req"] == 3.0
        assert snap["depth"] == 2.0
        assert snap["lat.count"] == 1.0
        assert snap["lat.p95"] == 0.5

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert reg.names() == ["a", "b"]

    def test_reset_zeroes_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.histogram("h").observe(1.0)
        reg.reset()
        assert reg.snapshot()["c"] == 0.0
        assert reg.snapshot()["h.count"] == 0.0

    def test_global_registry_singleton(self):
        reset_registry()
        try:
            assert get_registry() is get_registry()
        finally:
            reset_registry()


class TestThreadSafety:
    def test_concurrent_counter_increments_are_exact(self):
        reg = MetricsRegistry()
        threads_n, per_thread = 8, 2000

        def worker():
            counter = reg.counter("hits")
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hits").value == threads_n * per_thread

    def test_concurrent_histogram_observes_are_exact(self):
        reg = MetricsRegistry()
        threads_n, per_thread = 8, 1000

        def worker():
            hist = reg.histogram("lat", window=64)
            for _ in range(per_thread):
                hist.observe(1.0)

        threads = [threading.Thread(target=worker) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        hist = reg.histogram("lat")
        assert hist.count == threads_n * per_thread
        assert hist.sum == float(threads_n * per_thread)

    def test_concurrent_get_or_create_single_instance(self):
        reg = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            seen.append(reg.counter("one"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)


class TestServingMetricsFacade:
    """ServingMetrics must keep its historical snapshot keys and attrs."""

    LEGACY_KEYS = {
        "requests", "batches", "mean_batch_size", "throughput_rps",
        "uptime_seconds", "busy_seconds", "latency_mean_ms",
        "latency_p50_ms", "latency_p95_ms", "cache_hits", "cache_misses",
        "cache_hit_rate",
    }

    def test_snapshot_keeps_legacy_keys(self):
        snap = ServingMetrics().snapshot()
        assert self.LEGACY_KEYS <= set(snap)

    def test_snapshot_adds_queue_keys(self):
        snap = ServingMetrics().snapshot()
        for key in ("queued_requests", "queue_wait_mean_ms",
                    "queue_wait_p50_ms", "queue_wait_p95_ms"):
            assert key in snap

    def test_attribute_api_still_works(self):
        metrics = ServingMetrics()
        metrics.record_batch(4, 0.2)
        metrics.record_cache(hit=True)
        metrics.record_cache(hit=False)
        assert metrics.requests == 4
        assert metrics.batches == 1
        assert metrics.cache_hits == 1
        assert metrics.cache_misses == 1
        assert metrics.total_seconds == pytest.approx(0.2)

    def test_backed_by_shared_registry(self):
        reg = MetricsRegistry()
        metrics = ServingMetrics(registry=reg)
        metrics.record_batch(2, 0.1)
        snap = reg.snapshot()
        assert snap["serve.requests"] == 2.0
        assert snap["serve.latency_seconds.count"] == 2.0

    def test_deferred_latency_suppresses_window_only(self):
        metrics = ServingMetrics()
        with metrics.deferred_latency():
            metrics.record_batch(3, 0.3)
        snap = metrics.snapshot()
        assert snap["requests"] == 3
        assert snap["latency_mean_ms"] == 0.0  # window untouched
        metrics.record_queued(latencies=[0.5, 0.5, 0.5], queue_waits=[0.4, 0.4, 0.4])
        snap = metrics.snapshot()
        assert snap["latency_mean_ms"] == pytest.approx(500.0)
        assert snap["queued_requests"] == 3
        assert snap["queue_wait_mean_ms"] == pytest.approx(400.0)
