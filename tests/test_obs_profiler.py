"""Autograd op profiler: attribution on a tiny known graph, hook lifecycle,
zero-cost disabled path, and table rendering."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.tensor import set_op_hook
from repro.obs import OpProfiler, render_profile


@pytest.fixture(autouse=True)
def _no_leftover_hook():
    yield
    set_op_hook(None)


class TestAttribution:
    def test_tiny_graph_forward_and_backward_counts(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3, 4)), requires_grad=True)
        with OpProfiler() as prof:
            loss = (a @ b).tanh().sum()
            loss.backward()
        snap = prof.snapshot()
        for op in ("matmul", "tanh", "sum"):
            assert snap["forward"][op]["calls"] == 1
            assert snap["backward"][op]["calls"] == 1
            assert snap["forward"][op]["seconds"] >= 0.0

    def test_repeated_ops_accumulate_calls(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with OpProfiler() as prof:
            y = x
            for _ in range(5):
                y = y * 2.0
            y.sum().backward()
        snap = prof.snapshot()
        assert snap["forward"]["mul"]["calls"] == 5
        assert snap["backward"]["mul"]["calls"] == 5

    def test_backward_time_lands_on_creating_op(self):
        # Only ops executed inside the profiled window are attributed; a
        # backward() through nodes created while profiling reports both
        # phases for exactly those ops.
        x = Tensor(np.ones(3), requires_grad=True)
        with OpProfiler() as prof:
            (x.exp() + x).sum().backward()
        snap = prof.snapshot()
        assert set(snap["backward"]) == {"exp", "add", "sum"}

    def test_ops_outside_window_not_recorded(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x.exp()  # created before the profiler starts
        with OpProfiler() as prof:
            z = y.sum()
        snap = prof.snapshot()
        assert "exp" not in snap["forward"]
        assert snap["forward"]["sum"]["calls"] == 1
        assert z.data == pytest.approx(float(np.exp(1.0) * 3))

    def test_total_seconds_by_phase(self):
        x = Tensor(np.ones((4, 4)), requires_grad=True)
        with OpProfiler() as prof:
            (x @ x).sum().backward()
        total = prof.total_seconds()
        assert total == pytest.approx(
            prof.total_seconds("forward") + prof.total_seconds("backward")
        )


class TestLifecycle:
    def test_disabled_records_nothing(self):
        prof = OpProfiler()
        x = Tensor(np.ones(2), requires_grad=True)
        x.sum().backward()
        assert prof.snapshot()["forward"] == {}

    def test_double_start_raises(self):
        prof = OpProfiler().start()
        try:
            with pytest.raises(RuntimeError):
                prof.start()
        finally:
            prof.stop()

    def test_stop_restores_previous_hook(self):
        calls = []
        set_op_hook(lambda phase, op, s: calls.append(op))
        with OpProfiler():
            pass
        Tensor(np.ones(2), requires_grad=True).sum()
        assert calls == ["sum"]  # the outer hook is back after stop()

    def test_stop_is_idempotent(self):
        prof = OpProfiler().start()
        prof.stop()
        prof.stop()
        assert not prof.running

    def test_reset_clears_stats(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with OpProfiler() as prof:
            x.sum()
        prof.reset()
        assert prof.total_seconds() == 0.0


class TestRendering:
    def test_table_lists_ops_and_totals(self):
        x = Tensor(np.ones((3, 3)), requires_grad=True)
        with OpProfiler() as prof:
            (x @ x).tanh().sum().backward()
        table = prof.table()
        for op in ("matmul", "tanh", "sum", "total"):
            assert op in table

    def test_render_profile_round_trips_through_dict(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with OpProfiler() as prof:
            x.sum().backward()
        import json
        profile = json.loads(json.dumps(prof.to_dict()))
        assert profile["type"] == "profile"
        assert "sum" in render_profile(profile)

    def test_limit_truncates_rows(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with OpProfiler() as prof:
            (x.exp() + x.tanh() * x.sigmoid()).sum().backward()
        short = prof.table(limit=1)
        # header + one op row + total row
        op_rows = [
            line for line in short.splitlines()[2:] if not line.strip().startswith("total")
        ]
        assert len(op_rows) == 1
