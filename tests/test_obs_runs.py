"""Run registry: persistence round-trip, regression diffing, CLI gating."""

import json

import pytest

from repro.cli import main
from repro.obs import (
    RUN_SCHEMA,
    RunRecord,
    RunRegistry,
    Threshold,
    config_digest,
    default_runs_dir,
    diff_runs,
    parse_threshold_specs,
)
from repro.obs.runs import higher_is_better


class TestRegistryPersistence:
    def test_record_round_trips(self, tmp_path):
        registry = RunRegistry(tmp_path)
        record = registry.record(
            kind="train",
            config={"epochs": 3, "seed": 7},
            metrics={"final_loss": 1.5},
            series={"total": [3.0, 2.0, 1.5]},
            notes="smoke",
        )
        loaded = registry.load(record.run_id)
        assert loaded.run_id == record.run_id
        assert loaded.kind == "train"
        assert loaded.metrics == {"final_loss": 1.5}
        assert loaded.series == {"total": [3.0, 2.0, 1.5]}
        assert loaded.config_digest == config_digest({"epochs": 3, "seed": 7})

    def test_schema_is_stamped(self, tmp_path):
        registry = RunRegistry(tmp_path)
        record = registry.record(kind="benchmark")
        payload = json.loads(registry.path_for(record.run_id).read_text())
        assert payload["schema"] == RUN_SCHEMA

    def test_load_by_path_or_id(self, tmp_path):
        registry = RunRegistry(tmp_path)
        record = registry.record(kind="train")
        by_path = registry.load(registry.path_for(record.run_id))
        assert by_path.run_id == registry.load(record.run_id).run_id

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunRegistry(tmp_path).load("nope")

    def test_foreign_json_skipped_by_list(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.record(kind="train")
        (tmp_path / "BENCH_other.json").write_text('{"not": "a record"}')
        assert len(registry.list()) == 1

    def test_list_filters_kind_and_latest_orders(self, tmp_path):
        registry = RunRegistry(tmp_path)
        first = registry.record(kind="train", run_id="train-0")
        registry.record(kind="benchmark", run_id="bench-0")
        second = registry.record(kind="train", run_id="train-1")
        trains = registry.list(kind="train")
        assert [r.run_id for r in trains] == [first.run_id, second.run_id]
        assert registry.latest(kind="train")[0].run_id == second.run_id

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            RunRecord.from_dict({"schema": "something/else", "run_id": "x"})

    def test_default_runs_dir_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "elsewhere"))
        assert default_runs_dir() == tmp_path / "elsewhere"


def _record(metrics, run_id="r"):
    return RunRecord(
        run_id=run_id, kind="train", created_ts=0.0, metrics=metrics
    )


class TestDiffing:
    def test_identical_runs_are_ok(self):
        diff = diff_runs(_record({"final_loss": 1.0}), _record({"final_loss": 1.0}))
        assert diff.ok
        assert diff.entries[0].status == "ok"

    def test_loss_increase_is_regression(self):
        diff = diff_runs(
            _record({"final_loss": 1.0}), _record({"final_loss": 1.2})
        )
        assert not diff.ok
        assert [e.metric for e in diff.regressions] == ["final_loss"]

    def test_loss_decrease_is_improvement(self):
        diff = diff_runs(
            _record({"final_loss": 1.0}), _record({"final_loss": 0.5})
        )
        assert diff.ok
        assert diff.entries[0].status == "improved"

    def test_accuracy_direction_inferred(self):
        assert higher_is_better("article_bi_accuracy")
        assert not higher_is_better("final_loss")
        diff = diff_runs(
            _record({"article_bi_accuracy": 0.9}),
            _record({"article_bi_accuracy": 0.5}),
        )
        assert not diff.ok

    def test_ungated_metric_is_info(self):
        diff = diff_runs(
            _record({"something_custom": 1.0}),
            _record({"something_custom": 99.0}),
        )
        assert diff.ok
        assert diff.entries[0].status == "info"

    def test_missing_metrics_surface_as_only(self):
        diff = diff_runs(_record({"a_only": 1.0}), _record({"b_only": 2.0}))
        statuses = {e.metric: e.status for e in diff.entries}
        assert statuses == {"a_only": "only_a", "b_only": "only_b"}

    def test_custom_threshold_overrides_default(self):
        diff = diff_runs(
            _record({"final_loss": 1.0}),
            _record({"final_loss": 1.04}),
            thresholds={"final_loss": Threshold("final_loss", 0.01)},
        )
        assert not diff.ok

    def test_render_names_the_verdict(self):
        diff = diff_runs(_record({"final_loss": 1.0}), _record({"final_loss": 9.0}))
        assert "REGRESSION in final_loss" in diff.render()


class TestThresholdSpecs:
    def test_parses_tolerance_and_direction(self):
        parsed = parse_threshold_specs(
            ["final_loss=0.02", "throughput_rps=0.1,higher", "x=0.3,lower"]
        )
        assert parsed["final_loss"].tolerance == 0.02
        assert parsed["final_loss"].higher_is_better is None
        assert parsed["throughput_rps"].direction() is True
        assert parsed["x"].direction() is False

    @pytest.mark.parametrize("bad", ["final_loss", "x=", "x=0.1,sideways"])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            parse_threshold_specs([bad])


class TestCli:
    def _write(self, registry, run_id, loss):
        registry.record(
            kind="train", run_id=run_id, metrics={"final_loss": loss}
        )

    def test_diff_exits_zero_when_unchanged(self, tmp_path, capsys):
        registry = RunRegistry(tmp_path)
        self._write(registry, "a", 1.0)
        self._write(registry, "b", 1.0)
        code = main(["obs", "diff", "a", "b", "--runs-dir", str(tmp_path)])
        assert code == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_diff_exits_nonzero_on_regression(self, tmp_path, capsys):
        registry = RunRegistry(tmp_path)
        self._write(registry, "a", 1.0)
        self._write(registry, "b", 2.0)
        code = main(["obs", "diff", "a", "b", "--runs-dir", str(tmp_path)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_diff_json_has_diff_schema(self, tmp_path, capsys):
        registry = RunRegistry(tmp_path)
        self._write(registry, "a", 1.0)
        self._write(registry, "b", 1.0)
        code = main([
            "obs", "diff", "a", "b", "--runs-dir", str(tmp_path), "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.obs.diff/1"
        assert payload["ok"] is True

    def test_diff_threshold_flag_gates_custom_metric(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.record(kind="train", run_id="a", metrics={"custom": 1.0})
        registry.record(kind="train", run_id="b", metrics={"custom": 2.0})
        assert main(["obs", "diff", "a", "b", "--runs-dir", str(tmp_path)]) == 0
        assert main([
            "obs", "diff", "a", "b", "--runs-dir", str(tmp_path),
            "--threshold", "custom=0.05",
        ]) == 1

    def test_runs_lists_records(self, tmp_path, capsys):
        registry = RunRegistry(tmp_path)
        self._write(registry, "train-a", 1.0)
        code = main(["obs", "runs", "--runs-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "train-a" in out
        assert "final_loss=1" in out

    def test_runs_empty_directory(self, tmp_path, capsys):
        assert main(["obs", "runs", "--runs-dir", str(tmp_path)]) == 0
        assert "no run records" in capsys.readouterr().out


class TestTrainIntegration:
    def test_train_writes_run_record_and_diff_passes(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        args = [
            "train", "--scale", "0.01", "--epochs", "2",
            "--runs-dir", str(runs),
        ]
        assert main(args) == 0
        assert main(args) == 0
        capsys.readouterr()
        registry = RunRegistry(runs)
        records = registry.list(kind="train")
        assert len(records) == 2
        first, second = records
        assert first.metrics["final_loss"] == pytest.approx(
            second.metrics["final_loss"]
        )
        assert "total" in first.series and "grad_norms" in first.series
        assert first.config["epochs"] == 2
        code = main([
            "obs", "diff", first.run_id, second.run_id,
            "--runs-dir", str(runs),
            # wall time is noisy on CI machines; gate the learning metrics
            "--threshold", "total_seconds=100",
            "--threshold", "mean_epoch_seconds=100",
        ])
        assert code == 0

    def test_no_run_record_flag(self, tmp_path):
        runs = tmp_path / "runs"
        assert main([
            "train", "--scale", "0.01", "--epochs", "2",
            "--runs-dir", str(runs), "--no-run-record",
        ]) == 0
        assert RunRegistry(runs).list() == []
