"""SLO monitor: rolling windows, edge-triggered breach/recover events."""

import pytest

from repro.obs import (
    EventLogger,
    MetricsRegistry,
    SloMonitor,
    SloRule,
    default_serving_rules,
)


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class CapturingSink:
    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


def _monitor(rules, registry=None):
    clock = FakeClock()
    sink = CapturingSink()
    monitor = SloMonitor(
        rules, logger=EventLogger(sinks=[sink]), registry=registry, clock=clock
    )
    return monitor, clock, sink


LATENCY = SloRule("latency_p95", "latency_seconds", "p95", 0.1,
                  window_seconds=10.0, min_samples=3)


class TestRuleValidation:
    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ValueError):
            SloRule("x", "s", "p42", 1.0)

    def test_nonpositive_window_rejected(self):
        with pytest.raises(ValueError):
            SloRule("x", "s", "p95", 1.0, window_seconds=0.0)

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ValueError):
            SloMonitor([LATENCY, LATENCY])

    def test_default_serving_rules_one_per_budget(self):
        rules = default_serving_rules(p95_latency_s=0.1, error_rate=0.05)
        assert [r.name for r in rules] == ["latency_p95", "error_rate"]
        assert default_serving_rules() == []


class TestEvaluation:
    def test_under_threshold_is_healthy(self):
        monitor, _, sink = _monitor([LATENCY])
        for _ in range(5):
            monitor.observe_latency(0.01)
        statuses = monitor.evaluate()
        assert not statuses[0].breached
        assert sink.events == []

    def test_min_samples_suppresses_early_alerts(self):
        monitor, _, _ = _monitor([LATENCY])
        monitor.observe_latency(99.0)  # terrible, but only one sample
        status = monitor.evaluate()[0]
        assert status.value is None
        assert not status.breached

    def test_breach_is_edge_triggered_once(self):
        monitor, _, sink = _monitor([LATENCY])
        for _ in range(4):
            monitor.observe_latency(5.0)
        monitor.evaluate()
        monitor.evaluate()
        monitor.evaluate()
        breaches = [e for e in sink.events if e.name == "breach"]
        assert len(breaches) == 1
        assert breaches[0].level == "warning"
        assert breaches[0].fields["rule"] == "latency_p95"
        assert breaches[0].fields["value"] > breaches[0].fields["threshold"]

    def test_recover_event_after_window_rolls(self):
        monitor, clock, sink = _monitor([LATENCY])
        for _ in range(4):
            monitor.observe_latency(5.0)
        monitor.evaluate()
        clock.advance(9.0)  # old samples still in window
        for _ in range(10):
            monitor.observe_latency(0.001)
        clock.advance(2.0)  # slow samples now out of the 10s window
        monitor.observe_latency(0.001)
        monitor.evaluate()
        names = [e.name for e in sink.events]
        assert names == ["breach", "recover"]
        assert monitor.breached_rules == []

    def test_error_rate_aggregate(self):
        rule = SloRule("error_rate", "errors", "error_rate", 0.25,
                       window_seconds=60.0, min_samples=4)
        monitor, _, sink = _monitor([rule])
        monitor.record_success(3)
        monitor.record_error(1)
        assert not monitor.evaluate()[0].breached  # exactly at 0.25
        monitor.record_error(4)
        assert monitor.evaluate()[0].breached
        assert [e.name for e in sink.events] == ["breach"]

    def test_queue_depth_uses_max_aggregate(self):
        rule = SloRule("queue_depth", "queue_depth", "max", 10,
                       window_seconds=60.0, min_samples=1)
        monitor, _, _ = _monitor([rule])
        monitor.observe_queue_depth(3)
        monitor.observe_queue_depth(50)
        monitor.observe_queue_depth(2)
        assert monitor.evaluate()[0].breached

    def test_registry_counters_track_breaches(self):
        registry = MetricsRegistry()
        monitor, _, _ = _monitor([LATENCY], registry=registry)
        for _ in range(4):
            monitor.observe_latency(5.0)
        monitor.evaluate()
        assert registry.snapshot()["obs.slo.breaches"] == 1.0
        assert registry.snapshot()["obs.slo.breached"] == 1.0


class TestHealth:
    def test_health_shape_matches_metrics_server_contract(self):
        monitor, _, _ = _monitor([LATENCY])
        payload = monitor.health()
        assert payload["status"] == "ok"
        assert payload["breached"] == []
        assert payload["rules"][0]["rule"] == "latency_p95"

    def test_health_degraded_on_breach(self):
        monitor, _, _ = _monitor([LATENCY])
        for _ in range(4):
            monitor.observe_latency(5.0)
        payload = monitor.health()
        assert payload["status"] == "degraded"
        assert payload["breached"] == ["latency_p95"]


class TestServingIntegration:
    def test_session_feeds_latency_per_request(self, small_dataset, small_split):
        from repro.core import FakeDetector, FakeDetectorConfig
        from repro.serve import ArticleRequest, InferenceSession

        detector = FakeDetector(FakeDetectorConfig(epochs=1)).fit(
            small_dataset, small_split
        )
        monitor, _, sink = _monitor([
            SloRule("latency_p95", "latency_seconds", "p95", 1e-9,
                    window_seconds=60.0, min_samples=3),
        ])
        session = InferenceSession(detector, slo=monitor)
        requests = [
            ArticleRequest(article_id=f"n{i}", text=f"claim number {i}")
            for i in range(3)
        ]
        session.predict(requests)
        assert [e.name for e in sink.events] == ["breach"]

    def test_batch_queue_feeds_errors_and_queue_signals(self):
        from repro.serve import BatchQueue

        monitor, _, sink = _monitor([
            SloRule("error_rate", "errors", "error_rate", 0.5,
                    window_seconds=60.0, min_samples=1),
        ])

        def handler(items):
            raise RuntimeError("boom")

        with BatchQueue(handler, max_wait=0.0, slo=monitor) as queue:
            pending = queue.submit("x")
            with pytest.raises(RuntimeError):
                pending.result(timeout=5.0)
        assert [e.name for e in sink.events] == ["breach"]
