"""End-to-end observability smoke: `repro train --trace --profile` on the
synthetic dataset must produce a parseable trace with epoch spans carrying
loss/grad-norm attributes, an embedded op profile, and a report rendering.

Marked ``obs`` so CI can select just this path with ``-m obs``.
"""

import pytest

from repro.cli import main
from repro.obs import read_trace, render_trace_file

pytestmark = pytest.mark.obs


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
    # --no-run-record: this module-scoped fixture is built before the
    # function-scoped REPRO_RUNS_DIR isolation applies, so recording here
    # would leak into the repo's real results/runs/.
    code = main([
        "train", "--scale", "0.01", "--seed", "3", "--epochs", "2",
        "--explicit-dim", "30", "--max-seq-len", "10",
        "--trace", str(path), "--profile", "--no-run-record",
    ])
    assert code == 0
    return path


class TestTrainTraceSmoke:
    def test_trace_parses_and_has_epoch_spans(self, trace_path):
        records = read_trace(trace_path)
        assert records[0]["type"] == "trace_start"
        spans = [r for r in records if r["type"] == "span"]
        epochs = [s for s in spans if s["name"] == "epoch"]
        assert len(epochs) == 2
        for span in epochs:
            assert span["duration"] > 0
            for key in ("loss_total", "loss_article", "loss_creator",
                        "loss_subject", "grad_norm", "seconds"):
                assert key in span["attrs"], key

    def test_epoch_spans_nest_under_fit(self, trace_path):
        spans = [r for r in read_trace(trace_path) if r["type"] == "span"]
        fit = next(s for s in spans if s["name"] == "fit")
        assert all(
            s["parent_id"] == fit["span_id"]
            for s in spans if s["name"] == "epoch"
        )
        assert fit["attrs"]["epochs_run"] == 2

    def test_pipeline_spans_present(self, trace_path):
        names = {r["name"] for r in read_trace(trace_path) if r["type"] == "span"}
        assert "pipeline.build_features" in names
        assert "pipeline.build_graph_index" in names

    def test_profile_record_embedded(self, trace_path):
        profiles = [r for r in read_trace(trace_path) if r["type"] == "profile"]
        assert len(profiles) == 1
        forward = profiles[0]["ops"]["forward"]
        assert forward["matmul"]["calls"] > 0
        assert profiles[0]["total_seconds"] > 0

    def test_obs_report_renders(self, trace_path, capsys):
        code = main(["obs", "report", str(trace_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "op profile" in out
        assert "epoch" in out
