"""Span tracer: nesting, self-time math, JSONL round trip, no-op fallback."""

import json
import multiprocessing
import threading
import time

import pytest

from repro.obs import (
    NULL_SPAN,
    TRACE_SCHEMA,
    TraceContext,
    Tracer,
    TraceStore,
    aggregate_spans,
    get_tracer,
    install_tracer,
    new_span_id,
    read_trace,
    render_spans,
    render_timeline,
    render_trace_file,
    reset_context,
    self_times,
    set_context,
    span_record,
    trace,
    uninstall_tracer,
)


@pytest.fixture(autouse=True)
def _no_global_tracer():
    uninstall_tracer()
    yield
    uninstall_tracer()


class TestSpanNesting:
    def test_parent_linkage(self):
        tracer = install_tracer(Tracer())
        with trace("outer"):
            with trace("inner"):
                pass
        outer = next(s for s in tracer.spans if s.name == "outer")
        inner = next(s for s in tracer.spans if s.name == "inner")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_children_close_before_parents(self):
        tracer = install_tracer(Tracer())
        with trace("outer"):
            with trace("inner"):
                pass
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_siblings_share_parent(self):
        tracer = install_tracer(Tracer())
        with trace("root"):
            with trace("a"):
                pass
            with trace("b"):
                pass
        root = next(s for s in tracer.spans if s.name == "root")
        assert all(
            s.parent_id == root.span_id for s in tracer.spans if s.name in "ab"
        )

    def test_attrs_and_set(self):
        tracer = install_tracer(Tracer())
        with trace("epoch", epoch=3) as span:
            span.set(loss=0.5)
        assert tracer.spans[0].attrs == {"epoch": 3, "loss": 0.5}

    def test_exception_records_error_and_unwinds(self):
        tracer = install_tracer(Tracer())
        with pytest.raises(ValueError):
            with trace("outer"):
                with trace("inner"):
                    raise ValueError("boom")
        inner = next(s for s in tracer.spans if s.name == "inner")
        outer = next(s for s in tracer.spans if s.name == "outer")
        assert inner.attrs["error"] == "ValueError"
        assert outer.attrs["error"] == "ValueError"
        assert tracer.current() is None

    def test_per_thread_stacks(self):
        tracer = install_tracer(Tracer())
        seen = {}

        def worker(name):
            with trace(name):
                time.sleep(0.01)
            seen[name] = True

        with trace("main"):
            threads = [
                threading.Thread(target=worker, args=(f"t{i}",)) for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # Worker spans must NOT be parented under the main thread's span.
        for span in tracer.spans:
            if span.name.startswith("t"):
                assert span.parent_id is None
        assert len(seen) == 3

    def test_durations_are_positive_and_nested(self):
        tracer = install_tracer(Tracer())
        with trace("outer"):
            with trace("inner"):
                time.sleep(0.01)
        inner = next(s for s in tracer.spans if s.name == "inner")
        outer = next(s for s in tracer.spans if s.name == "outer")
        assert inner.duration >= 0.01
        assert outer.duration >= inner.duration


class TestNullSpan:
    def test_trace_without_tracer_is_null(self):
        assert get_tracer() is None
        assert trace("anything", k=1) is NULL_SPAN

    def test_null_span_is_inert(self):
        with trace("x") as span:
            span.set(a=1)
        assert span is NULL_SPAN
        assert span.attrs == {}


class TestSelfTime:
    def _spans(self):
        # root (1.0s) -> a (0.4s) -> leaf (0.1s); root -> b (0.3s)
        return [
            {"type": "span", "span_id": 3, "parent_id": 2, "name": "leaf",
             "start": 0.0, "end": 0.1, "duration": 0.1, "attrs": {}},
            {"type": "span", "span_id": 2, "parent_id": 1, "name": "a",
             "start": 0.0, "end": 0.4, "duration": 0.4, "attrs": {}},
            {"type": "span", "span_id": 4, "parent_id": 1, "name": "b",
             "start": 0.5, "end": 0.8, "duration": 0.3, "attrs": {}},
            {"type": "span", "span_id": 1, "parent_id": None, "name": "root",
             "start": 0.0, "end": 1.0, "duration": 1.0, "attrs": {}},
        ]

    def test_self_time_subtracts_direct_children(self):
        selfs = self_times(self._spans())
        assert selfs[1] == pytest.approx(1.0 - 0.4 - 0.3)
        assert selfs[2] == pytest.approx(0.4 - 0.1)
        assert selfs[3] == pytest.approx(0.1)
        assert selfs[4] == pytest.approx(0.3)

    def test_self_time_clamped_at_zero(self):
        spans = [
            {"span_id": 1, "parent_id": None, "name": "r", "duration": 0.1},
            {"span_id": 2, "parent_id": 1, "name": "c", "duration": 0.2},
        ]
        assert self_times(spans)[1] == 0.0

    def test_aggregate_collapses_repeated_paths(self):
        spans = self._spans()
        # Add a second root->a span: path ("root", "a") should count 2.
        spans.append(
            {"type": "span", "span_id": 5, "parent_id": 1, "name": "a",
             "start": 0.8, "end": 0.9, "duration": 0.1, "attrs": {}}
        )
        rows = {path: (count, total) for path, count, total, _ in aggregate_spans(spans)}
        assert rows[("root", "a")] == (2, pytest.approx(0.5))
        assert rows[("root",)][0] == 1

    def test_aggregate_depth_first_order(self):
        paths = [row[0] for row in aggregate_spans(self._spans())]
        assert paths == [("root",), ("root", "a"), ("root", "a", "leaf"), ("root", "b")]

    def test_render_spans_mentions_every_name(self):
        text = render_spans(self._spans())
        for name in ("root", "a", "leaf", "b"):
            assert name in text
        assert "100.0%" in text  # the root row covers all root time


class TestJsonlRoundTrip:
    def test_streamed_file_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = install_tracer(Tracer(path))
        with trace("fit", epochs=2):
            with trace("epoch", epoch=1) as span:
                span.set(loss=1.25)
        tracer.write({"type": "profile", "ops": {}, "total_seconds": 0.0})
        uninstall_tracer().close()

        records = read_trace(path)
        assert records[0]["type"] == "trace_start"
        spans = {r["name"]: r for r in records if r["type"] == "span"}
        assert spans["epoch"]["parent_id"] == spans["fit"]["span_id"]
        assert spans["epoch"]["attrs"] == {"epoch": 1, "loss": 1.25}
        assert spans["fit"]["attrs"] == {"epochs": 2}
        assert records[-1]["type"] == "profile"
        for line in path.read_text().splitlines():
            json.loads(line)  # every line independently parseable

    def test_dump_retained_spans(self, tmp_path):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        out = tracer.dump(tmp_path / "dump.jsonl")
        records = read_trace(out)
        assert [r["name"] for r in records] == ["only"]

    def test_keep_false_streams_without_retaining(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(path, keep=False) as tracer:
            with tracer.span("s"):
                pass
        assert tracer.spans == []
        assert any(r["type"] == "span" for r in read_trace(path))

    def test_render_trace_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = install_tracer(Tracer(path))
        with trace("fit"):
            with trace("epoch"):
                pass
        uninstall_tracer().close()
        text = render_trace_file(path)
        assert "1 profiles" not in text
        assert "2 spans" in text
        assert "fit" in text and "epoch" in text


def _emit_span_ids(count, out):
    out.put([new_span_id() for _ in range(count)])


class TestSpanIds:
    def test_unique_within_process(self):
        ids = [new_span_id() for _ in range(256)]
        assert len(set(ids)) == 256

    def test_fits_traceparent_span_field(self):
        assert 0 < new_span_id() < 2**64

    def test_no_collisions_across_forked_workers(self):
        """Regression: forked children inherit the module counter state, so
        an unsalted id generator hands two workers the same span id."""
        ctx = multiprocessing.get_context("fork")
        out = ctx.Queue()
        procs = [
            ctx.Process(target=_emit_span_ids, args=(50, out)) for _ in range(3)
        ]
        for p in procs:
            p.start()
        batches = [out.get(timeout=30.0) for _ in procs]
        for p in procs:
            p.join(timeout=30.0)
        parent_ids = [new_span_id() for _ in range(50)]
        combined = [i for batch in batches for i in batch] + parent_ids
        assert len(set(combined)) == len(combined)


class TestContextAdoption:
    def test_top_level_span_adopts_ambient_context(self):
        tracer = install_tracer(Tracer())
        ctx = TraceContext(trace_id="ab" * 16, span_id=777)
        token = set_context(ctx)
        try:
            with trace("handler"):
                with trace("child"):
                    pass
        finally:
            reset_context(token)
        handler = next(s for s in tracer.spans if s.name == "handler")
        child = next(s for s in tracer.spans if s.name == "child")
        assert handler.trace_id == ctx.trace_id
        assert handler.parent_id == 777
        # Children inherit the trace id but parent under the local span.
        assert child.trace_id == ctx.trace_id
        assert child.parent_id == handler.span_id

    def test_no_context_leaves_trace_id_unset(self):
        tracer = install_tracer(Tracer())
        with trace("plain"):
            pass
        span = tracer.spans[0]
        assert span.trace_id is None
        assert "trace_id" not in span.to_dict()

    def test_sink_and_clock(self):
        seen = []
        fake_now = [100.0]
        tracer = Tracer(keep=False, sink=seen.append, clock=lambda: fake_now[0])
        with tracer.span("s"):
            fake_now[0] = 101.5
        assert tracer.spans == []
        assert len(seen) == 1
        assert seen[0]["name"] == "s"
        assert seen[0]["duration"] == pytest.approx(1.5)


class TestTraceStore:
    def _record(self, trace_id, name="w", parent=None, start=1.0, end=2.0):
        return span_record(
            name, trace_id=trace_id, parent_id=parent, start=start, end=end
        )

    def test_merges_spans_into_one_file(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        tid = "ab" * 16
        store.add_spans(tid, [self._record(tid, "front")])
        store.add_spans(tid, [self._record(tid, "worker")])
        records = store.read(tid)
        assert records[0]["type"] == "trace_meta"
        assert records[0]["schema"] == TRACE_SCHEMA
        assert [r["name"] for r in records[1:]] == ["front", "worker"]
        assert store.trace_ids() == [tid]

    def test_sink_routes_by_trace_id(self, tmp_path):
        store = TraceStore(tmp_path)
        tid = "cd" * 16
        store.sink(self._record(tid))
        store.sink({"type": "span", "name": "no-trace", "attrs": {}})
        assert store.trace_ids() == [tid]

    def test_malformed_trace_id_rejected(self, tmp_path):
        store = TraceStore(tmp_path)
        with pytest.raises(ValueError):
            store.path_for("../../etc/passwd")
        with pytest.raises(ValueError):
            store.path_for("UPPER" + "a" * 27)

    def test_missing_trace_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TraceStore(tmp_path).read("ef" * 16)

    def test_render_timeline_orders_and_indents(self, tmp_path):
        tid = "12" * 16
        root = span_record(
            "serve.request", trace_id=tid, parent_id=None,
            start=10.0, end=10.1, span_id=1,
        )
        child = span_record(
            "worker.forward", trace_id=tid, parent_id=1,
            start=10.02, end=10.08, span_id=2, worker=0,
        )
        store = TraceStore(tmp_path)
        store.add_spans(tid, [child, root])   # arrival order ≠ time order
        text = render_timeline(store.read(tid))
        lines = text.splitlines()
        assert tid in lines[0]
        request_line = next(l for l in lines if "serve.request" in l)
        worker_line = next(l for l in lines if "worker.forward" in l)
        assert lines.index(request_line) < lines.index(worker_line)
        assert "worker=0" in worker_line

    def test_timeline_to_dict_schema_and_ordering(self, tmp_path):
        from repro.obs import TRACE_RENDER_SCHEMA, timeline_to_dict

        tid = "34" * 16
        root = span_record(
            "serve.request", trace_id=tid, parent_id=None,
            start=10.0, end=10.1, span_id=1,
        )
        # Worker clock skews 20 ms ahead; arrival order is reversed too.
        child = span_record(
            "worker.forward", trace_id=tid, parent_id=1,
            start=10.02, end=10.08, span_id=2, worker=1,
        )
        store = TraceStore(tmp_path)
        store.add_spans(tid, [child, root])
        payload = timeline_to_dict(store.read(tid))
        assert payload["schema"] == TRACE_RENDER_SCHEMA
        assert payload["trace_id"] == tid
        assert payload["trace_schema"] == TRACE_SCHEMA
        assert payload["span_count"] == 2
        assert payload["duration_ms"] == pytest.approx(100.0)
        names = [s["name"] for s in payload["spans"]]
        assert names == ["serve.request", "worker.forward"]  # by start
        forward = payload["spans"][1]
        assert forward["depth"] == 1
        assert forward["offset_ms"] == pytest.approx(20.0)
        assert forward["attrs"] == {"worker": 1}
        # The document round-trips through JSON without loss.
        assert json.loads(json.dumps(payload)) == payload
