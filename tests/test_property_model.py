"""Property-based tests on model components and the synthetic generator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.core import GDU
from repro.data import GeneratorConfig, PolitiFactGenerator
from repro.data.credibility import derive_entity_label, weighted_credibility_score
from repro.data.schema import CredibilityLabel


@given(
    st.integers(1, 6),     # batch
    st.integers(1, 8),     # input dim
    st.integers(1, 8),     # hidden dim
    st.integers(0, 10_000),
)
@settings(max_examples=30, deadline=None)
def test_gdu_output_always_bounded(batch, input_dim, hidden_dim, seed):
    """|h| <= 1: the four gate products partition unit mass over tanh terms."""
    rng = np.random.default_rng(seed)
    gdu = GDU(input_dim=input_dim, hidden_dim=hidden_dim, rng=rng)
    x = Tensor(rng.standard_normal((batch, input_dim)) * 10)
    z = Tensor(rng.standard_normal((batch, hidden_dim)) * 10)
    t = Tensor(rng.standard_normal((batch, hidden_dim)) * 10)
    h = gdu(x, z, t)
    assert np.all(np.abs(h.data) <= 1.0 + 1e-9)


@given(
    st.integers(1, 6),
    st.integers(1, 8),
    st.integers(1, 8),
    st.integers(0, 10_000),
)
@settings(max_examples=20, deadline=None)
def test_gdu_deterministic(batch, input_dim, hidden_dim, seed):
    rng = np.random.default_rng(seed)
    gdu = GDU(input_dim=input_dim, hidden_dim=hidden_dim, rng=rng)
    x = Tensor(rng.standard_normal((batch, input_dim)))
    z = Tensor(rng.standard_normal((batch, hidden_dim)))
    t = Tensor(rng.standard_normal((batch, hidden_dim)))
    np.testing.assert_array_equal(gdu(x, z, t).data, gdu(x, z, t).data)


@given(
    st.integers(40, 120),   # articles
    st.integers(5, 15),     # creators
    st.integers(5, 12),     # subjects
    st.integers(0, 1000),   # seed
)
@settings(max_examples=15, deadline=None)
def test_generator_invariants_under_random_configs(n_articles, n_creators, n_subjects, seed):
    """Any feasible config yields a valid corpus with exact counts."""
    config = GeneratorConfig(
        num_articles=n_articles,
        num_creators=n_creators,
        num_subjects=n_subjects,
        seed=seed,
        include_case_studies=False,
    )
    dataset = PolitiFactGenerator(config).generate()
    dataset.validate()  # referential integrity
    assert dataset.num_articles == n_articles
    assert dataset.num_creators == n_creators
    assert dataset.num_subjects == min(n_subjects, 152)
    # Every creator has at least one article (counts >= 1 by construction).
    assert all(arts for arts in dataset.articles_by_creator().values())
    # Derived labels are consistent with the weighted-sum rule.
    by_creator = dataset.articles_by_creator()
    for cid, creator in list(dataset.creators.items())[:5]:
        expected = derive_entity_label(a.label for a in by_creator[cid])
        assert creator.label is expected


@given(st.lists(st.sampled_from(list(CredibilityLabel)), min_size=1, max_size=25))
@settings(max_examples=60, deadline=None)
def test_weighted_score_within_label_extremes(labels):
    score = weighted_credibility_score(labels)
    assert min(int(l) for l in labels) <= score <= max(int(l) for l in labels)


@given(
    st.integers(2, 40),
    st.floats(min_value=0.1, max_value=1.0),
    st.integers(0, 500),
)
@settings(max_examples=30, deadline=None)
def test_generator_scaling_of_links(n_articles_tens, scale_noise, seed):
    """Subject link totals always hit the requested target exactly."""
    n_articles = n_articles_tens * 10
    target = int(n_articles * 3.47)
    config = GeneratorConfig(
        num_articles=n_articles,
        num_creators=max(3, n_articles // 10),
        num_subjects=10,
        target_subject_links=target,
        seed=seed,
        include_case_studies=False,
    )
    dataset = PolitiFactGenerator(config).generate()
    # Cap: at most min(8, n_subjects) subjects per article.
    max_possible = n_articles * min(8, dataset.num_subjects)
    assert dataset.num_article_subject_links == min(target, max_possible)
