"""Tests for the public gradcheck utility and saliency explanations."""

import numpy as np
import pytest

from repro.autograd import GradientCheckError, Tensor, gradcheck, numeric_gradient
from repro.core import FakeDetector, FakeDetectorConfig
from repro.experiments import explain_article


class TestGradcheck:
    def test_passes_on_correct_gradient(self, rng):
        x = Tensor(rng.standard_normal((3, 3)), requires_grad=True)
        assert gradcheck(lambda x: (x.tanh() ** 2).sum(), [x])

    def test_fails_on_broken_gradient(self, rng):
        """A custom op with a deliberately wrong backward must be caught."""

        def broken_double(t: Tensor) -> Tensor:
            def backward(grad):
                return (grad * 3.0,)  # wrong: forward is *2

            return Tensor._make(t.data * 2.0, (t,), backward)

        x = Tensor(rng.standard_normal(4), requires_grad=True)
        with pytest.raises(GradientCheckError):
            gradcheck(lambda x: broken_double(x).sum(), [x])

    def test_requires_scalar(self, rng):
        x = Tensor(rng.standard_normal(3), requires_grad=True)
        with pytest.raises(ValueError):
            gradcheck(lambda x: x * 2, [x])

    def test_skips_non_grad_inputs(self, rng):
        x = Tensor(rng.standard_normal(3), requires_grad=True)
        c = Tensor(rng.standard_normal(3))  # constant
        assert gradcheck(lambda x, c: (x * c).sum(), [x, c])

    def test_numeric_gradient_linear(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        grad = numeric_gradient(lambda x: (x * 3.0).sum(), [x], 0)
        np.testing.assert_allclose(grad, [3.0, 3.0], atol=1e-6)


class TestSaliency:
    @pytest.fixture(scope="class")
    def trained(self, request):
        dataset = request.getfixturevalue("small_dataset")
        split = request.getfixturevalue("small_split")
        config = FakeDetectorConfig(
            epochs=10, explicit_dim=40, vocab_size=800, max_seq_len=12,
            embed_dim=5, rnn_hidden=6, latent_dim=5, gdu_hidden=10, seed=0,
        )
        return FakeDetector(config).fit(dataset, split), dataset, split

    def test_returns_ranked_attributions(self, trained):
        det, _, split = trained
        attributions = explain_article(det, split.articles.test[0], top_k=8)
        magnitudes = [abs(a.attribution) for a in attributions]
        assert magnitudes == sorted(magnitudes, reverse=True)
        assert len(attributions) <= 8

    def test_only_present_words_attributed(self, trained):
        det, _, split = trained
        for attribution in explain_article(det, split.articles.test[0], top_k=20):
            assert attribution.count != 0

    def test_attribution_is_gradient_times_count(self, trained):
        det, _, split = trained
        for a in explain_article(det, split.articles.test[0], top_k=5):
            assert a.attribution == pytest.approx(a.gradient * a.count)

    def test_unknown_article_rejected(self, trained):
        det, _, _ = trained
        with pytest.raises(KeyError):
            explain_article(det, "ghost")

    def test_target_class_range(self, trained):
        det, _, split = trained
        with pytest.raises(ValueError):
            explain_article(det, split.articles.test[0], target_class=9)

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            explain_article(FakeDetector(), "n0")

    def test_explicit_gradients_do_not_leak_into_training(self, trained):
        """Saliency must not mutate the stored explicit features."""
        det, _, split = trained
        before = det.features.articles.explicit.copy()
        explain_article(det, split.articles.test[0])
        np.testing.assert_array_equal(before, det.features.articles.explicit)


class TestSaliencyOtherKinds:
    @pytest.fixture(scope="class")
    def trained(self, request):
        dataset = request.getfixturevalue("small_dataset")
        split = request.getfixturevalue("small_split")
        config = FakeDetectorConfig(
            epochs=6, explicit_dim=30, vocab_size=600, max_seq_len=10,
            embed_dim=5, rnn_hidden=6, latent_dim=5, gdu_hidden=10, seed=0,
        )
        return FakeDetector(config).fit(dataset, split), dataset, split

    def test_explain_creator(self, trained):
        from repro.experiments import explain_creator

        det, _, split = trained
        attributions = explain_creator(det, split.creators.test[0], top_k=5)
        assert attributions
        for a in attributions:
            assert a.count != 0

    def test_explain_subject(self, trained):
        from repro.experiments import explain_subject

        det, _, split = trained
        attributions = explain_subject(det, split.subjects.test[0], top_k=5)
        assert all(a.attribution == pytest.approx(a.gradient * a.count) for a in attributions)

    def test_unknown_creator(self, trained):
        from repro.experiments import explain_creator

        det, _, _ = trained
        with pytest.raises(KeyError):
            explain_creator(det, "ghost")
