"""Tests for the self-training extension."""

import numpy as np
import pytest

from repro.core import FakeDetectorConfig, SelfTrainingFakeDetector


def small_config(**overrides):
    base = dict(
        epochs=6, explicit_dim=30, vocab_size=500, max_seq_len=10,
        embed_dim=5, rnn_hidden=6, latent_dim=5, gdu_hidden=8, seed=0,
    )
    base.update(overrides)
    return FakeDetectorConfig(**base)


class TestValidation:
    def test_rounds(self):
        with pytest.raises(ValueError):
            SelfTrainingFakeDetector(rounds=-1)

    def test_confidence(self):
        with pytest.raises(ValueError):
            SelfTrainingFakeDetector(confidence=0.3)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            SelfTrainingFakeDetector().predict("article")


class TestFit:
    @pytest.fixture(scope="class")
    def fitted(self, request):
        dataset = request.getfixturevalue("small_dataset")
        split = request.getfixturevalue("small_split")
        rng = np.random.default_rng(0)
        sparse = split.subsample_train(0.2, rng)  # label-scarce regime
        model = SelfTrainingFakeDetector(
            config=small_config(), rounds=2, confidence=0.8,
            max_added_per_round=40,
        )
        return model.fit(dataset, sparse), dataset, split, sparse

    def test_rounds_recorded(self, fitted):
        model, _, _, _ = fitted
        assert len(model.history) <= 2
        for entry in model.history:
            assert entry.added > 0
            assert entry.threshold == 0.8

    def test_pseudo_labels_capped(self, fitted):
        model, _, _, _ = fitted
        for entry in model.history:
            assert entry.added <= 40

    def test_predictions_complete(self, fitted):
        model, dataset, _, _ = fitted
        preds = model.predict("article")
        assert set(preds) == set(dataset.articles)

    def test_true_labels_never_leak(self, fitted):
        """The augmented corpora replace article labels with predictions;
        the original dataset object must be untouched."""
        model, dataset, _, sparse = fitted
        # Re-generate the fixture corpus and compare labels.
        from repro.data import GeneratorConfig, PolitiFactGenerator

        fresh = PolitiFactGenerator(GeneratorConfig(scale=0.02, seed=11)).generate()
        for aid, article in fresh.articles.items():
            assert dataset.articles[aid].label is article.label

    def test_zero_rounds_is_plain_detector(self, small_dataset, small_split):
        model = SelfTrainingFakeDetector(config=small_config(), rounds=0)
        model.fit(small_dataset, small_split)
        assert model.history == []
        assert model.predict("article")

    def test_unreachable_confidence_stops_early(self, small_dataset, small_split):
        model = SelfTrainingFakeDetector(
            config=small_config(epochs=2), rounds=3, confidence=1.0
        )
        model.fit(small_dataset, small_split)
        # With an (almost) unreachable threshold, no pseudo-labels are added.
        assert len(model.history) == 0 or model.history[0].added >= 0
