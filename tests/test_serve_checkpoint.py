"""Full-detector persistence: save → load → predict parity."""

import json

import numpy as np
import pytest

from repro.core import FakeDetector, FakeDetectorConfig
from repro.serve import CHECKPOINT_FORMAT, load_detector, save_detector
from repro.text import BagOfWordsExtractor, Vocabulary


@pytest.fixture(scope="module")
def fitted(request):
    dataset = request.getfixturevalue("tiny_dataset")
    split = request.getfixturevalue("tiny_split")
    config = FakeDetectorConfig(
        epochs=3, explicit_dim=24, vocab_size=400, max_seq_len=10,
        embed_dim=4, rnn_hidden=6, latent_dim=4, gdu_hidden=8, seed=0,
    )
    return FakeDetector(config).fit(dataset, split), dataset


class TestRoundTrip:
    def test_bit_identical_logits(self, fitted, tmp_path):
        detector, _ = fitted
        detector.save(tmp_path / "ckpt")
        restored = FakeDetector.load(tmp_path / "ckpt")
        original = detector.predict_logits()
        reloaded = restored.predict_logits()
        for kind in ("article", "creator", "subject"):
            np.testing.assert_array_equal(original[kind], reloaded[kind])

    def test_config_and_ids_survive(self, fitted, tmp_path):
        detector, _ = fitted
        save_detector(detector, tmp_path / "ckpt")
        restored = load_detector(tmp_path / "ckpt")
        assert restored.config == detector.config
        for kind in ("article", "creator", "subject"):
            assert restored.features.by_type(kind).ids == detector.features.by_type(kind).ids
            assert restored.features.by_type(kind).index == detector.features.by_type(kind).index

    def test_inductive_predictions_survive(self, fitted, tmp_path):
        """A loaded detector scores new articles like the original."""
        from repro.data import Article, CredibilityLabel

        detector, dataset = fitted
        template = next(iter(dataset.articles.values()))
        new = [
            Article("n1", "secret rigged hoax conspiracy", CredibilityLabel.FALSE,
                    template.creator_id, template.subject_ids),
            Article("n2", "census data report analysis", CredibilityLabel.TRUE,
                    "ghost_creator", ["ghost_subject"]),
        ]
        detector.save(tmp_path / "ckpt")
        restored = FakeDetector.load(tmp_path / "ckpt")
        assert restored.predict_new_articles(new) == detector.predict_new_articles(new)

    def test_predict_dict_wrapper_matches(self, fitted, tmp_path):
        detector, _ = fitted
        detector.save(tmp_path / "ckpt")
        restored = FakeDetector.load(tmp_path / "ckpt")
        assert restored.predict("article") == detector.predict("article")


class TestErrors:
    def test_unfitted_save_raises(self, tmp_path):
        with pytest.raises(RuntimeError):
            FakeDetector().save(tmp_path / "nope")

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FakeDetector.load(tmp_path / "missing")

    def test_bad_format_rejected(self, fitted, tmp_path):
        detector, _ = fitted
        path = tmp_path / "ckpt"
        detector.save(path)
        manifest = json.loads((path / "detector.json").read_text())
        manifest["format"] = "fakedetector-checkpoint/999"
        (path / "detector.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError):
            FakeDetector.load(path)

    def test_format_constant(self):
        assert CHECKPOINT_FORMAT.startswith("fakedetector-checkpoint/")


class TestDriftBaseline:
    def test_save_writes_baseline_profile(self, fitted, tmp_path):
        from repro.obs import BaselineProfile, load_baseline

        detector, _ = fitted
        detector.save(tmp_path / "ckpt")
        baseline = load_baseline(tmp_path / "ckpt")
        assert isinstance(baseline, BaselineProfile)
        assert baseline.samples > 0
        assert baseline == BaselineProfile.from_detector(detector)

    def test_baseline_outside_checkpoint_digest(self, fitted, tmp_path):
        """The profile is telemetry metadata, not model identity: deleting
        or editing it must not change the digest workers advertise."""
        from repro.serve import checkpoint_digest

        detector, _ = fitted
        path = tmp_path / "ckpt"
        detector.save(path)
        digest = checkpoint_digest(path)
        (path / "drift_baseline.json").unlink()
        assert checkpoint_digest(path) == digest

    def test_pre_drift_checkpoint_loads_without_baseline(self, fitted, tmp_path):
        from repro.obs import load_baseline

        detector, _ = fitted
        path = tmp_path / "ckpt"
        detector.save(path)
        (path / "drift_baseline.json").unlink()
        restored = FakeDetector.load(path)
        assert restored.predict("article") == detector.predict("article")
        assert load_baseline(path) is None


class TestComponentSerialization:
    def test_vocabulary_dict_round_trip(self):
        vocab = Vocabulary.build([["a", "b", "a"], ["b", "c"]], max_size=10)
        clone = Vocabulary.from_dict(json.loads(json.dumps(vocab.to_dict())))
        assert clone.tokens == vocab.tokens
        assert clone.counts == vocab.counts
        assert clone.index("a") == vocab.index("a")

    def test_extractor_dict_round_trip_bit_exact(self):
        docs = [["tax", "cut", "tax"], ["hoax", "scandal"], ["tax", "data"]]
        extractor = BagOfWordsExtractor.fit(
            docs, [1, 0, 1], size=4, normalize=True, min_count=1, weighting="tfidf"
        )
        clone = BagOfWordsExtractor.from_dict(
            json.loads(json.dumps(extractor.to_dict()))
        )
        assert clone.words == extractor.words
        np.testing.assert_array_equal(
            clone.transform(docs), extractor.transform(docs)
        )
