"""Wire schemas: request/response round-trips and version rejection."""

import json

import numpy as np
import pytest

from repro.serve import (
    ERROR_SCHEMA,
    REQUEST_SCHEMA,
    RESPONSE_REVISION,
    RESPONSE_SCHEMA,
    ArticleRequest,
    PredictRequest,
    PredictResponse,
    ProtocolError,
    encode_prediction,
    error_body,
    predictions_from_logits,
)


def make_predictions(n=2, return_proba=False):
    rng = np.random.default_rng(7)
    logits = rng.normal(size=(n, 6))
    return predictions_from_logits(
        [f"a{i}" for i in range(n)], logits, return_proba=return_proba
    )


class TestPredictRequest:
    def payload(self):
        return {
            "schema": REQUEST_SCHEMA,
            "articles": [
                {"article_id": "a1", "text": "claim one",
                 "creator_id": "c1", "subject_ids": ["s2", "s1"]},
                {"article_id": "a2", "text": "claim two"},
            ],
            "return_proba": True,
        }

    def test_round_trip(self):
        request = PredictRequest.from_dict(self.payload())
        assert request.return_proba is True
        assert [a.article_id for a in request.articles] == ["a1", "a2"]
        assert isinstance(request.articles[0], ArticleRequest)
        assert request.articles[0].subject_ids == ["s2", "s1"]
        assert request.articles[1].creator_id == ""
        # encode → decode is the identity on the wire document
        again = PredictRequest.from_dict(
            json.loads(json.dumps(request.to_dict()))
        )
        assert again == request

    def test_unknown_schema_version_rejected(self):
        payload = self.payload()
        payload["schema"] = "repro.serve.request/2"
        with pytest.raises(ProtocolError) as err:
            PredictRequest.from_dict(payload)
        assert err.value.code == "bad_schema"
        assert "repro.serve.request/1" in err.value.message

    def test_missing_schema_rejected(self):
        payload = self.payload()
        del payload["schema"]
        with pytest.raises(ProtocolError) as err:
            PredictRequest.from_dict(payload)
        assert err.value.code == "bad_schema"

    def test_empty_articles_rejected(self):
        payload = self.payload()
        payload["articles"] = []
        with pytest.raises(ProtocolError) as err:
            PredictRequest.from_dict(payload)
        assert err.value.code == "bad_request"

    def test_article_without_id_rejected(self):
        payload = self.payload()
        payload["articles"][1] = {"text": "no id"}
        with pytest.raises(ProtocolError, match="article_id"):
            PredictRequest.from_dict(payload)

    def test_duplicate_article_ids_rejected(self):
        payload = self.payload()
        payload["articles"][1]["article_id"] = "a1"
        with pytest.raises(ProtocolError, match="duplicate"):
            PredictRequest.from_dict(payload)

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError) as err:
            PredictRequest.from_dict(["not", "a", "dict"])
        assert err.value.code == "bad_request"


class TestPredictResponse:
    def test_from_predictions_round_trip(self):
        preds = make_predictions(2, return_proba=True)
        response = PredictResponse.from_predictions(
            preds, model_digest="abc123", shards=[0, 1],
            timing={"total_ms": 5.0},
        )
        doc = json.loads(json.dumps(response.to_dict()))
        assert doc["schema"] == RESPONSE_SCHEMA
        assert doc["model_digest"] == "abc123"
        assert [p["shard"] for p in doc["predictions"]] == [0, 1]
        again = PredictResponse.from_dict(doc)
        assert again.model_digest == "abc123"
        assert again.timing["total_ms"] == 5.0
        assert [p["entity_id"] for p in again.predictions] == ["a0", "a1"]
        for raw, pred in zip(again.predictions, preds):
            assert raw["class_index"] == pred.class_index
            np.testing.assert_allclose(raw["proba"], pred.proba)

    def test_unknown_schema_version_rejected(self):
        with pytest.raises(ProtocolError) as err:
            PredictResponse.from_dict({"schema": "repro.serve.response/9",
                                       "predictions": []})
        assert err.value.code == "bad_schema"

    def test_prediction_without_entity_id_rejected(self):
        with pytest.raises(ProtocolError, match="entity_id"):
            PredictResponse.from_dict({
                "schema": RESPONSE_SCHEMA,
                "predictions": [{"class_index": 0}],
            })

    def test_encode_prediction_shard_optional(self):
        pred = make_predictions(1)[0]
        assert "shard" not in encode_prediction(pred)
        assert encode_prediction(pred, shard=3)["shard"] == 3


class TestResponseMeta:
    """The additive revision-2 ``meta`` block (request/trace correlation)."""

    def test_meta_round_trip_with_revision_stamp(self):
        response = PredictResponse.from_predictions(
            make_predictions(1), model_digest="abc",
        )
        response.meta = {"request_id": "aa" * 8, "trace_id": "bb" * 16}
        doc = json.loads(json.dumps(response.to_dict()))
        assert doc["meta"]["revision"] == RESPONSE_REVISION
        assert doc["meta"]["request_id"] == "aa" * 8
        assert doc["meta"]["trace_id"] == "bb" * 16
        again = PredictResponse.from_dict(doc)
        assert again.meta["request_id"] == "aa" * 8
        assert again.meta["trace_id"] == "bb" * 16

    def test_none_values_dropped_from_wire(self):
        response = PredictResponse.from_predictions(
            make_predictions(1), model_digest="abc",
        )
        response.meta = {"request_id": None}
        doc = response.to_dict()
        assert "request_id" not in doc["meta"]

    def test_revision_1_document_without_meta_still_parses(self):
        """Old servers emit no meta block; revision-2 decoders accept it."""
        doc = PredictResponse.from_predictions(
            make_predictions(1), model_digest="abc"
        ).to_dict()
        del doc["meta"]
        assert doc["schema"] == RESPONSE_SCHEMA   # same major schema
        again = PredictResponse.from_dict(doc)
        assert again.meta == {}

    def test_non_object_meta_rejected(self):
        doc = PredictResponse.from_predictions(make_predictions(1)).to_dict()
        doc["meta"] = ["not", "a", "dict"]
        with pytest.raises(ProtocolError, match="meta"):
            PredictResponse.from_dict(doc)


class TestErrorBody:
    def test_structure(self):
        body = error_body("overloaded", "queue full", retry_after=1)
        assert body["schema"] == ERROR_SCHEMA
        assert body["error"]["code"] == "overloaded"
        assert body["error"]["message"] == "queue full"
        assert body["error"]["detail"] == {"retry_after": 1}
        json.dumps(body)  # JSON-serializable as-is

    def test_detail_omitted_when_empty(self):
        assert "detail" not in error_body("timeout", "too slow")["error"]
