"""BatchQueue: micro-batch coalescing, concurrency, and failure modes."""

import threading
import time

import pytest

from repro.serve import BatchQueue, LRUCache, QueueStopped, ServingMetrics


def echo_handler(items):
    return [i * 2 for i in items]


class TestBatching:
    def test_single_item_round_trip(self):
        with BatchQueue(echo_handler, max_batch_size=4, max_wait=0.005) as q:
            assert q.predict(21) == 42

    def test_coalesces_concurrent_submissions(self):
        """Items submitted together are processed in fewer handler calls."""
        batch_sizes = []

        def handler(items):
            batch_sizes.append(len(items))
            return list(items)

        with BatchQueue(handler, max_batch_size=16, max_wait=0.05) as q:
            pendings = [q.submit(i) for i in range(12)]
            results = [p.result(timeout=5.0) for p in pendings]
        assert results == list(range(12))
        assert sum(batch_sizes) == 12
        assert len(batch_sizes) < 12  # actually batched, not one-by-one

    def test_respects_max_batch_size(self):
        batch_sizes = []

        def handler(items):
            batch_sizes.append(len(items))
            return list(items)

        with BatchQueue(handler, max_batch_size=3, max_wait=0.05) as q:
            pendings = [q.submit(i) for i in range(10)]
            for p in pendings:
                p.result(timeout=5.0)
        assert max(batch_sizes) <= 3

    def test_concurrent_threads_smoke(self):
        """Many client threads hammering the queue all get correct answers."""
        results = {}
        errors = []

        with BatchQueue(echo_handler, max_batch_size=8, max_wait=0.002) as q:
            def client(start, count):
                try:
                    for value in range(start, start + count):
                        results[value] = q.predict(value, timeout=10.0)
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(base * 100, 25))
                for base in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert not errors
        assert len(results) == 150
        assert all(v == k * 2 for k, v in results.items())
        assert q.batches_processed >= 1


class TestFailureModes:
    def test_handler_exception_propagates_to_waiters(self):
        def bad_handler(items):
            raise ValueError("boom")

        with BatchQueue(bad_handler, max_batch_size=4, max_wait=0.001) as q:
            pending = q.submit(1)
            with pytest.raises(ValueError, match="boom"):
                pending.result(timeout=5.0)

    def test_length_mismatch_is_an_error(self):
        with BatchQueue(lambda items: [], max_batch_size=4, max_wait=0.001) as q:
            with pytest.raises(RuntimeError):
                q.predict(1, timeout=5.0)

    def test_submit_before_start_rejected(self):
        q = BatchQueue(echo_handler)
        with pytest.raises(RuntimeError):
            q.submit(1)

    def test_stop_rejects_unprocessed(self):
        started = threading.Event()

        def slow_handler(items):
            started.set()
            time.sleep(0.2)
            return list(items)

        q = BatchQueue(slow_handler, max_batch_size=1, max_wait=0.0).start()
        first = q.submit(1)
        started.wait(timeout=5.0)
        late = q.submit(2)  # sits in the queue while the worker sleeps
        q.stop(timeout=5.0)
        assert first.result(timeout=1.0) == 1
        if not late.done() or isinstance(late._error, QueueStopped):
            with pytest.raises(QueueStopped):
                late.result(timeout=1.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BatchQueue(echo_handler, max_batch_size=0)
        with pytest.raises(ValueError):
            BatchQueue(echo_handler, max_wait=-1.0)

    def test_restart_after_stop(self):
        q = BatchQueue(echo_handler, max_batch_size=2, max_wait=0.001)
        with q:
            assert q.predict(1, timeout=5.0) == 2
        with q:
            assert q.predict(2, timeout=5.0) == 4


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1      # refresh 'a'
        cache.put("c", 3)               # evicts 'b'
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.evictions == 1

    def test_disabled_cache(self):
        cache = LRUCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_stats(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=-1)


class TestQueuedLatency:
    """The queue must record true per-request latency, not compute-share."""

    def test_submit_stamps_enqueue_time(self):
        with BatchQueue(echo_handler, max_batch_size=2, max_wait=0.001) as q:
            pending = q.submit(1)
            assert pending.enqueued_at is not None
            pending.result(timeout=5.0)

    def test_true_latency_includes_queue_wait(self):
        """A fast handler behind a slow batch window must report the full
        enqueue-to-resolve time, not handler_seconds / batch_size."""
        metrics = ServingMetrics()

        def slow_handler(items):
            metrics.record_batch(len(items), 0.001)  # what a session does
            time.sleep(0.05)
            return list(items)

        with BatchQueue(
            slow_handler, max_batch_size=4, max_wait=0.001, metrics=metrics
        ) as q:
            q.predict(1, timeout=5.0)

        snap = metrics.snapshot()
        # Old bug: latency would be 0.001 / 1 = 1ms. True latency spans the
        # 50ms handler sleep.
        assert snap["latency_p50_ms"] >= 50.0
        assert snap["queued_requests"] == 1
        assert snap["requests"] == 1  # deferred_latency kept counters intact

    def test_queue_wait_recorded_separately(self):
        metrics = ServingMetrics()
        release = threading.Event()

        def gated_handler(items):
            release.wait(timeout=5.0)
            return list(items)

        q = BatchQueue(
            gated_handler, max_batch_size=1, max_wait=0.0, metrics=metrics
        ).start()
        try:
            first = q.submit(1)   # occupies the worker at the gate
            second = q.submit(2)  # waits in the queue behind it
            time.sleep(0.05)
            release.set()
            first.result(timeout=5.0)
            second.result(timeout=5.0)
        finally:
            q.stop()

        snap = metrics.snapshot()
        assert snap["queued_requests"] == 2
        # The second item waited at least the 50ms the gate was closed.
        assert metrics.registry.histogram("serve.queue_wait_seconds").quantile(1.0) >= 0.05

    def test_without_metrics_queue_still_works(self):
        with BatchQueue(echo_handler, max_batch_size=4, max_wait=0.001) as q:
            assert q.predict(3, timeout=5.0) == 6


class TestServingMetrics:
    def test_snapshot_math(self):
        metrics = ServingMetrics()
        metrics.record_batch(4, 0.02)
        metrics.record_batch(2, 0.01)
        metrics.record_cache(hit=True)
        metrics.record_cache(hit=False)
        snap = metrics.snapshot()
        assert snap["requests"] == 6
        assert snap["batches"] == 2
        assert snap["mean_batch_size"] == 3.0
        assert snap["cache_hit_rate"] == 0.5
        assert snap["latency_p50_ms"] > 0

    def test_render_is_textual(self):
        metrics = ServingMetrics()
        metrics.record_batch(1, 0.001)
        text = metrics.render()
        assert "serving metrics:" in text
        assert "throughput_rps" in text

    def test_empty_snapshot(self):
        snap = ServingMetrics().snapshot()
        assert snap["requests"] == 0
        assert snap["latency_mean_ms"] == 0.0
        assert snap["cache_hit_rate"] == 0.0
