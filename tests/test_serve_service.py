"""End-to-end HTTP service: parity, routing, admission control, health."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core import FakeDetector, FakeDetectorConfig
from repro.serve import (
    REQUEST_SCHEMA,
    ArticleRequest,
    InferenceSession,
    PredictionService,
)


def _post(url, payload, timeout=60.0):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url + "/v1/predict", data=body,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, json.loads(reply.read().decode("utf-8")), reply.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8")), exc.headers


def _get(url, path, timeout=60.0):
    try:
        with urllib.request.urlopen(url + path, timeout=timeout) as reply:
            return reply.status, reply.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


@pytest.fixture(scope="module")
def checkpoint(request, tmp_path_factory):
    dataset = request.getfixturevalue("tiny_dataset")
    split = request.getfixturevalue("tiny_split")
    config = FakeDetectorConfig(
        epochs=2, explicit_dim=24, vocab_size=400, max_seq_len=10,
        embed_dim=4, rnn_hidden=6, latent_dim=4, gdu_hidden=8, seed=0,
    )
    detector = FakeDetector(config).fit(dataset, split)
    path = tmp_path_factory.mktemp("ckpt") / "detector"
    detector.save(path)
    return path


@pytest.fixture(scope="module")
def service(checkpoint, tmp_path_factory):
    svc = PredictionService(
        checkpoint, workers=2, shards=2, max_wait=0.001, max_queue_depth=8,
        trace_dir=tmp_path_factory.mktemp("traces"),
    )
    with svc:
        yield svc


@pytest.fixture(scope="module")
def shard_articles(request, service):
    """Shard-local articles for both shards, plus a cold one.

    Each grounded article names a creator from a distinct shard (and no
    subjects), plus one training-shaped request (a known creator with its
    training subjects) — the traffic classes shard-local serving is
    lossless for.
    """
    dataset = request.getfixturevalue("tiny_dataset")
    by_shard = {}
    for creator, shard in sorted(service.plan.creator_shard.items()):
        by_shard.setdefault(shard, creator)
    assert set(by_shard) == {0, 1}
    articles = [
        ArticleRequest(f"grounded_{shard}",
                       "secret rigged hoax conspiracy scandal",
                       creator_id=creator)
        for shard, creator in sorted(by_shard.items())
    ]
    template = next(iter(dataset.articles.values()))
    articles.append(
        ArticleRequest("training_shaped", template.text,
                       creator_id=template.creator_id,
                       subject_ids=list(template.subject_ids))
    )
    articles.append(ArticleRequest("cold_1", "census report data percent"))
    return articles


def _payload(articles, return_proba=False):
    return {
        "schema": REQUEST_SCHEMA,
        "articles": [
            {"article_id": a.article_id, "text": a.text,
             "creator_id": a.creator_id, "subject_ids": list(a.subject_ids)}
            for a in articles
        ],
        "return_proba": return_proba,
    }


class TestPredictEndpoint:
    def test_http_labels_match_inference_session(self, service, checkpoint,
                                                 shard_articles):
        status, doc, _ = _post(service.url, _payload(shard_articles))
        assert status == 200
        assert doc["schema"] == "repro.serve.response/1"
        assert doc["model_digest"] == service.model_digest
        session = InferenceSession(FakeDetector.load(checkpoint))
        expected = session.predict(shard_articles)
        assert [p["entity_id"] for p in doc["predictions"]] \
            == [a.article_id for a in shard_articles]
        assert [p["class_index"] for p in doc["predictions"]] \
            == [p.class_index for p in expected]

    def test_request_fans_out_across_shards(self, service, shard_articles):
        status, doc, _ = _post(service.url, _payload(shard_articles))
        assert status == 200
        assert doc["timing"]["shards"] == 2.0
        for raw, article in zip(doc["predictions"], shard_articles):
            assert raw["shard"] == service.plan.route(article)

    def test_proba_round_trip(self, service, shard_articles):
        status, doc, _ = _post(
            service.url, _payload(shard_articles, return_proba=True)
        )
        assert status == 200
        for raw in doc["predictions"]:
            assert len(raw["proba"]) == 6
            assert max(range(6), key=raw["proba"].__getitem__) \
                == raw["class_index"]

    def test_repeated_requests_are_deterministic(self, service, shard_articles):
        _, first, _ = _post(service.url, _payload(shard_articles))
        _, second, _ = _post(service.url, _payload(shard_articles))
        assert first["predictions"] == second["predictions"]


class TestErrorPaths:
    def test_unknown_schema_version_400(self, service):
        payload = _payload([ArticleRequest("a", "text")])
        payload["schema"] = "repro.serve.request/2"
        status, doc, _ = _post(service.url, payload)
        assert status == 400
        assert doc["schema"] == "repro.serve.error/1"
        assert doc["error"]["code"] == "bad_schema"

    def test_invalid_json_400(self, service):
        request = urllib.request.Request(
            service.url + "/v1/predict", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=60.0)
        assert err.value.code == 400
        assert json.loads(err.value.read())["error"]["code"] == "bad_request"

    def test_unknown_route_404(self, service):
        code, body = _get(service.url, "/v1/nothing")
        assert code == 404
        assert json.loads(body)["error"]["code"] == "not_found"

    def test_overload_returns_429_with_retry_after(self, service, shard_articles):
        saved = service.max_queue_depth
        service.max_queue_depth = 0   # exhaust the admission budget
        try:
            status, doc, headers = _post(service.url, _payload(shard_articles))
        finally:
            service.max_queue_depth = saved
        assert status == 429
        assert doc["error"]["code"] == "overloaded"
        assert headers["Retry-After"] == "1"
        # and the pool recovers once the budget is back
        status, _, _ = _post(service.url, _payload(shard_articles))
        assert status == 200


class TestOperationalEndpoints:
    def test_healthz_reports_pool(self, service):
        code, body = _get(service.url, "/v1/healthz")
        assert code == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["shards"] == 2
        assert [w["shard"] for w in health["workers"]] == [0, 1]
        assert all(w["alive"] for w in health["workers"])

    def test_metrics_exposes_http_counters(self, service, shard_articles):
        _post(service.url, _payload(shard_articles))
        code, body = _get(service.url, "/metrics")
        assert code == 200
        assert "repro_serve_http_requests" in body
        assert "repro_serve_inflight" in body

    def test_worker_digests_match_checkpoint(self, service):
        assert all(
            h.model_digest == service.model_digest for h in service._workers
        )


class TestCorrelation:
    def test_client_request_id_echoed(self, service, shard_articles):
        body = json.dumps(_payload(shard_articles)).encode("utf-8")
        request = urllib.request.Request(
            service.url + "/v1/predict", data=body,
            headers={"Content-Type": "application/json",
                     "X-Request-Id": "cafe0123cafe0123"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=60.0) as reply:
            doc = json.loads(reply.read())
            assert reply.headers["X-Request-Id"] == "cafe0123cafe0123"
        assert doc["meta"]["request_id"] == "cafe0123cafe0123"

    def test_request_id_minted_when_absent(self, service, shard_articles):
        _, doc, headers = _post(service.url, _payload(shard_articles))
        minted = headers["X-Request-Id"]
        assert len(minted) == 16
        assert doc["meta"]["request_id"] == minted

    def test_request_id_echoed_on_errors(self, service):
        payload = _payload([ArticleRequest("a", "text")])
        payload["schema"] = "repro.serve.request/2"
        status, _, headers = _post(service.url, payload)
        assert status == 400
        assert headers["X-Request-Id"]

    def test_meta_block_is_revision_2(self, service, shard_articles):
        _, doc, _ = _post(service.url, _payload(shard_articles))
        assert doc["meta"]["revision"] == 2
        assert len(doc["meta"]["trace_id"]) == 32


class TestDistributedTracing:
    def _traced_post(self, service, articles):
        from repro.obs import TraceContext, inject

        context = TraceContext.new().child(0xABCDEF)
        body = json.dumps(_payload(articles)).encode("utf-8")
        headers = inject(context, {"Content-Type": "application/json"})
        request = urllib.request.Request(
            service.url + "/v1/predict", data=body, headers=headers,
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=60.0) as reply:
            doc = json.loads(reply.read())
        return context, doc

    def test_one_merged_trace_per_request(self, service, shard_articles):
        context, doc = self._traced_post(service, shard_articles)
        assert doc["meta"]["trace_id"] == context.trace_id
        records = service.trace_store.read(context.trace_id)
        assert records[0]["type"] == "trace_meta"
        spans = [r for r in records if r.get("type") == "span"]
        names = {s["name"] for s in spans}
        assert {"serve.request", "serve.route", "serve.admit",
                "serve.dispatch", "serve.collect", "worker.queue_wait",
                "worker.batch_assembly", "worker.forward",
                "worker.serialize"} <= names
        assert all(s["trace_id"] == context.trace_id for s in spans)

    def test_span_parentage_crosses_processes(self, service, shard_articles):
        context, _ = self._traced_post(service, shard_articles)
        spans = [
            r for r in service.trace_store.read(context.trace_id)
            if r.get("type") == "span"
        ]
        root = next(s for s in spans if s["name"] == "serve.request")
        # The root parents under the client's traceparent span.
        assert root["parent_id"] == 0xABCDEF
        # Front-end sub-spans parent under the root in-process...
        route = next(s for s in spans if s["name"] == "serve.route")
        assert route["parent_id"] == root["span_id"]
        # ...and so do the worker spans shipped over the response queue.
        forwards = [s for s in spans if s["name"] == "worker.forward"]
        assert forwards and all(
            s["parent_id"] == root["span_id"] for s in forwards
        )
        # This request fanned out across both shards.
        assert {s["attrs"]["shard"] for s in forwards} == {0, 1}

    def test_untraced_requests_mint_distinct_traces(self, service,
                                                    shard_articles):
        _, first, _ = _post(service.url, _payload(shard_articles))
        _, second, _ = _post(service.url, _payload(shard_articles))
        assert first["meta"]["trace_id"] != second["meta"]["trace_id"]
        for doc in (first, second):
            records = service.trace_store.read(doc["meta"]["trace_id"])
            assert any(r.get("name") == "serve.request" for r in records)

    def test_render_timeline_over_live_trace(self, service, shard_articles):
        from repro.obs import render_timeline

        context, _ = self._traced_post(service, shard_articles)
        text = render_timeline(service.trace_store.read(context.trace_id))
        assert context.trace_id in text
        assert "serve.request" in text and "worker.forward" in text


class TestDriftDegradation:
    @pytest.fixture(scope="class")
    def drifting_service(self, checkpoint):
        svc = PredictionService(
            checkpoint, workers=2, shards=2, max_wait=0.001,
            drift_baseline="auto", drift_threshold=0.05, drift_min_samples=1,
        )
        with svc:
            yield svc

    def test_shifted_stream_degrades_healthz(self, drifting_service,
                                             shard_articles):
        # A narrow repeated stream concentrates the predicted-class and
        # confidence histograms far from the training baseline.
        for _ in range(4):
            status, _, _ = _post(
                drifting_service.url, _payload(shard_articles)
            )
            assert status == 200
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            drift = drifting_service.drift_status()
            if drift and any(s.get("breached") for s in drift.values()):
                break
            time.sleep(0.05)
        code, body = _get(drifting_service.url, "/v1/healthz")
        health = json.loads(body)
        assert code == 503
        assert health["status"] == "degraded"
        assert health["drift"]["breached_shards"]
        shard_state = next(iter(health["drift"]["shards"].values()))
        assert shard_state["class_psi"] is not None

    def test_drift_gauges_reach_metrics_endpoint(self, drifting_service):
        code, body = _get(drifting_service.url, "/metrics")
        assert code == 200
        assert "repro_drift_class_psi_shard" in body
        assert "repro_drift_samples_shard" in body

    def test_unarmed_service_reports_no_drift(self, service):
        code, body = _get(service.url, "/v1/healthz")
        assert code == 200
        assert "drift" not in json.loads(body)


class TestContinuousProfiling:
    @pytest.fixture(scope="class")
    def profiled_service(self, checkpoint):
        svc = PredictionService(
            checkpoint, workers=2, shards=2, max_wait=0.001, profile_hz=250,
        )
        with svc:
            yield svc

    def _load(self, svc, articles, stop):
        while not stop.is_set():
            _post(svc.url, _payload(articles))

    def _capture_under_load(self, svc, articles, path):
        import threading

        stop = threading.Event()
        driver = threading.Thread(
            target=self._load, args=(svc, articles, stop), daemon=True
        )
        driver.start()
        try:
            return _get(svc.url, path, timeout=120.0)
        finally:
            stop.set()
            driver.join(30.0)

    def test_debug_profile_merges_all_shards(self, profiled_service,
                                             shard_articles):
        code, body = self._capture_under_load(
            profiled_service, shard_articles, "/debug/profile?seconds=1.5"
        )
        assert code == 200
        doc = json.loads(body)
        assert doc["schema"] == "repro.obs.profile/1"
        assert doc["samples"] > 0
        assert set(doc["meta"]["parts"]) \
            == {"frontend", "shard0;worker0", "shard1;worker1"}
        roots = {stack.split(";")[0] for stack in doc["stacks"]}
        assert roots == {"frontend", "shard0", "shard1"}
        # The tagged batched forward shows up in worker stacks.
        assert any("worker.forward" in stack for stack in doc["stacks"])

    def test_debug_profile_svg_and_folded_formats(self, profiled_service,
                                                  shard_articles):
        code, svg = self._capture_under_load(
            profiled_service, shard_articles,
            "/debug/profile?seconds=0.5&format=svg",
        )
        assert code == 200
        assert svg.startswith("<svg")
        code, folded = _get(
            profiled_service.url, "/debug/profile?seconds=0.3&format=folded",
            timeout=120.0,
        )
        assert code == 200
        for line in folded.strip().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) > 0

    def test_debug_profile_rejects_bad_params(self, profiled_service):
        code, body = _get(profiled_service.url, "/debug/profile?seconds=soon")
        assert code == 400
        assert json.loads(body)["error"]["code"] == "bad_request"
        code, body = _get(profiled_service.url, "/debug/profile?format=png")
        assert code == 400

    def test_unarmed_service_still_captures_on_demand(self, service,
                                                      shard_articles):
        # The module fixture runs without profile_hz: the capture spins up
        # temporary samplers in every process for just the window.
        import threading

        stop = threading.Event()
        driver = threading.Thread(
            target=self._load, args=(service, shard_articles, stop),
            daemon=True,
        )
        driver.start()
        try:
            profile = service.capture_profile(0.8)
        finally:
            stop.set()
            driver.join(30.0)
        assert profile.samples > 0
        assert profile.meta["continuous"] is False
        assert {s.split(";")[0] for s in profile.stacks} \
            == {"frontend", "shard0", "shard1"}
        # Afterwards the workers' temporary samplers are stopped again: a
        # fresh snapshot request reports no armed profiler.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if all(
                payload is None
                for payload in service._worker_profiles().values()
            ):
                break
            time.sleep(0.05)
        assert all(
            payload is None for payload in service._worker_profiles().values()
        )


class TestShutdownRobustness:
    """Regression tests for the bounded collector/worker queue loops.

    The analyzer's concurrency pass (RA204) flagged both ``get()`` loops
    as unbounded: a lost sentinel would have hung them forever. Both now
    poll with a timeout and re-check their stop condition.
    """

    def _bare_service(self):
        import queue
        import threading

        from repro.serve.service import PredictionService

        svc = PredictionService.__new__(PredictionService)
        svc._responses = queue.Queue()
        svc._workers = []
        svc._closing = threading.Event()
        return svc

    def test_collector_exits_on_close_without_sentinel(self):
        # Simulates the sentinel being lost to a dead worker pipe: the
        # queue stays empty forever, only _closing is set.
        import threading

        svc = self._bare_service()
        thread = threading.Thread(target=svc._collect, daemon=True)
        thread.start()
        time.sleep(0.1)
        assert thread.is_alive()  # parked on the timed get, not spinning out
        svc._closing.set()
        thread.join(3.0)
        assert not thread.is_alive()

    def test_collector_still_honors_sentinel(self):
        import threading

        svc = self._bare_service()
        thread = threading.Thread(target=svc._collect, daemon=True)
        thread.start()
        svc._responses.put(("close",))
        thread.join(3.0)
        assert not thread.is_alive()


class TestWorkerLoopRobustness:
    """worker_main's request loop survives idle timeouts and orphaning."""

    def _start_worker(self, monkeypatch, parent_alive):
        import queue
        import threading

        import repro.serve.checkpoint as checkpoint_mod
        import repro.serve.session as session_mod
        import repro.serve.worker as worker_mod

        class FakeSession:
            def __init__(self, detector, **kwargs):
                pass

            def predict(self, articles, return_proba=False):
                return []

        class FakeParent:
            def is_alive(self):
                return parent_alive

        monkeypatch.setattr(checkpoint_mod, "load_detector", lambda p: object())
        monkeypatch.setattr(checkpoint_mod, "checkpoint_digest", lambda p: "d0")
        monkeypatch.setattr(session_mod, "InferenceSession", FakeSession)
        monkeypatch.setattr(
            worker_mod.multiprocessing, "parent_process", lambda: FakeParent()
        )
        requests, responses = queue.Queue(), queue.Queue()
        thread = threading.Thread(
            target=worker_mod.worker_main,
            args=("ckpt", 0, 0, None, requests, responses),
            daemon=True,
        )
        thread.start()
        assert responses.get(timeout=5.0)[0] == "ready"
        return thread, requests

    def test_idle_timeout_then_stop_sentinel(self, monkeypatch):
        thread, requests = self._start_worker(monkeypatch, parent_alive=True)
        # Let at least one get() time out before the sentinel arrives.
        time.sleep(1.2)
        assert thread.is_alive()
        requests.put(("stop",))
        thread.join(3.0)
        assert not thread.is_alive()

    def test_orphaned_worker_exits(self, monkeypatch):
        thread, _ = self._start_worker(monkeypatch, parent_alive=False)
        # No sentinel ever arrives; the dead parent is noticed on timeout.
        thread.join(3.0)
        assert not thread.is_alive()
