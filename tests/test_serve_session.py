"""InferenceSession: cached-state serving agrees with the cold path."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import FakeDetector, FakeDetectorConfig, Prediction
from repro.data import Article, CredibilityLabel
from repro.serve import ArticleRequest, InferenceSession
from repro.text.sequences import encode_batch
from repro.text.tokenizer import tokenize


@pytest.fixture(scope="module")
def fitted(request):
    dataset = request.getfixturevalue("tiny_dataset")
    split = request.getfixturevalue("tiny_split")
    config = FakeDetectorConfig(
        epochs=3, explicit_dim=24, vocab_size=400, max_seq_len=10,
        embed_dim=4, rnn_hidden=6, latent_dim=4, gdu_hidden=8, seed=0,
    )
    return FakeDetector(config).fit(dataset, split), dataset


@pytest.fixture()
def new_articles(fitted):
    _, dataset = fitted
    template = next(iter(dataset.articles.values()))
    return [
        Article("s1", "secret rigged hoax conspiracy scandal", CredibilityLabel.FALSE,
                template.creator_id, template.subject_ids),
        Article("s2", "census report data percent analysis", CredibilityLabel.TRUE,
                template.creator_id, template.subject_ids),
        Article("s3", "statement about the proposal", CredibilityLabel.HALF_TRUE,
                "ghost_creator", ["ghost_subject"]),
    ]


def cold_path_logits(detector, articles):
    """The pre-serve implementation of predict_new_articles, inlined.

    Re-runs the full-graph state pass on every call; the session must
    reproduce its logits exactly from the cached states.
    """
    detector.model.eval()
    _, states = detector.model.forward_with_states(detector.features, detector.graph)
    h_u, h_s = states["creator"].data, states["subject"].data
    tokens = [tokenize(a.text) for a in articles]
    explicit = detector.features.extractors["article"].transform(tokens)
    sequences = encode_batch(tokens, detector.features.vocab, detector.config.max_seq_len)
    x = detector.model.hflu_article(explicit, sequences)
    hidden = detector.model.gdu_article.hidden_dim
    z = np.zeros((len(articles), hidden))
    t = np.zeros((len(articles), hidden))
    c_index = detector.features.creators.index
    s_index = detector.features.subjects.index
    for i, article in enumerate(articles):
        known = [s_index[s] for s in article.subject_ids if s in s_index]
        if known:
            z[i] = h_s[known].mean(axis=0)
        if article.creator_id in c_index:
            t[i] = h_u[c_index[article.creator_id]]
    h = detector.model.gdu_article(x, Tensor(z), Tensor(t))
    return detector.model.head_article(h).data


class TestAgreement:
    def test_matches_cold_path_exactly(self, fitted, new_articles):
        detector, _ = fitted
        session = InferenceSession(detector)
        expected = cold_path_logits(detector, new_articles)
        preds = session.predict(new_articles)
        assert [p.class_index for p in preds] == list(expected.argmax(axis=1))

    def test_predict_new_articles_routes_through_session(self, fitted, new_articles):
        detector, _ = fitted
        session_preds = {
            p.entity_id: p.class_index
            for p in detector.session().predict(new_articles)
        }
        assert detector.predict_new_articles(new_articles) == session_preds

    def test_no_full_graph_forward_after_construction(self, fitted, new_articles):
        detector, _ = fitted
        session = InferenceSession(detector)
        calls = {"n": 0}
        original = detector.model.forward_with_states

        def spy(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        detector.model.forward_with_states = spy
        try:
            session.predict(new_articles)
            session.predict(new_articles, return_proba=True)
        finally:
            del detector.model.forward_with_states
        assert calls["n"] == 0

    def test_session_cached_on_detector(self, fitted):
        detector, _ = fitted
        assert detector.session() is detector.session()
        assert detector.session(refresh=True) is detector.session()

    def test_predict_known_ids_matches_transductive(self, fitted):
        detector, _ = fitted
        session = InferenceSession(detector)
        ids = detector.features.articles.ids
        known = {
            p.entity_id: p.class_index
            for p in session.predict(known_ids=ids)
        }
        assert known == detector.predict("article")


class TestPredictionSurface:
    def test_prediction_records(self, fitted, new_articles):
        detector, _ = fitted
        preds = detector.session().predict(new_articles, return_proba=True)
        for p in preds:
            assert isinstance(p, Prediction)
            assert p.label.class_index == p.class_index
            assert p.proba.shape == (6,)
            assert np.isclose(p.proba.sum(), 1.0)
            assert p.proba.argmax() == p.class_index

    def test_proba_matches_functional_softmax(self, fitted):
        from repro.autograd import functional as F

        detector, _ = fitted
        logits = detector.predict_logits()["creator"]
        expected = F.softmax(Tensor(logits)).data
        probs = detector.predict_proba("creator")
        ids = detector.features.creators.ids
        for i, eid in enumerate(ids):
            np.testing.assert_array_equal(probs[eid], expected[i])

    def test_predict_return_proba_returns_records(self, fitted):
        detector, _ = fitted
        records = detector.predict("article", return_proba=True)
        plain = detector.predict("article")
        assert set(records) == set(plain)
        for eid, record in records.items():
            assert isinstance(record, Prediction)
            assert record.class_index == plain[eid]
            assert record.proba is not None

    def test_article_request_duck_types(self, fitted, new_articles):
        detector, _ = fitted
        session = InferenceSession(detector)
        requests = [
            ArticleRequest.from_dict({
                "article_id": a.article_id, "text": a.text,
                "creator_id": a.creator_id, "subject_ids": a.subject_ids,
            })
            for a in new_articles
        ]
        via_articles = session.predict(new_articles)
        via_requests = session.predict(requests)
        assert [p.class_index for p in via_articles] == [p.class_index for p in via_requests]

    def test_to_dict_is_json_ready(self, fitted, new_articles):
        import json

        detector, _ = fitted
        pred = detector.session().predict([new_articles[0]], return_proba=True)[0]
        payload = json.loads(json.dumps(pred.to_dict()))
        assert payload["entity_id"] == "s1"
        assert 0 <= payload["class_index"] <= 5
        assert len(payload["proba"]) == 6


class TestCacheAndMetrics:
    def test_feature_cache_hits_on_repeat_text(self, fitted, new_articles):
        detector, _ = fitted
        session = InferenceSession(detector)
        session.predict(new_articles)
        assert session.metrics.cache_misses == len(new_articles)
        session.predict(new_articles)
        assert session.metrics.cache_hits == len(new_articles)
        assert session.cache_stats()["hit_rate"] == 0.5

    def test_cached_features_do_not_change_results(self, fitted, new_articles):
        detector, _ = fitted
        session = InferenceSession(detector)
        first = session.predict(new_articles, return_proba=True)
        second = session.predict(new_articles, return_proba=True)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.proba, b.proba)

    def test_snapshot_reports_counters(self, fitted, new_articles):
        detector, _ = fitted
        session = InferenceSession(detector)
        session.predict(new_articles)
        snap = session.snapshot()
        assert snap["requests"] == len(new_articles)
        assert snap["batches"] == 1
        assert snap["mean_batch_size"] == len(new_articles)
        assert snap["latency_mean_ms"] > 0
        assert snap["throughput_rps"] > 0

    def test_empty_batch(self, fitted):
        detector, _ = fitted
        session = InferenceSession(detector)
        assert session.predict([]) == []
        assert session.metrics.requests == 0

    def test_unfitted_detector_rejected(self):
        with pytest.raises(RuntimeError):
            InferenceSession(FakeDetector())


class TestUnifiedSurface:
    """The collapsed predict(articles, *, return_proba, known_ids) API."""

    def test_mixed_articles_and_known_ids_preserve_order(self, fitted, new_articles):
        detector, _ = fitted
        session = InferenceSession(detector)
        known = list(detector.features.articles.ids[:2])
        preds = session.predict(new_articles, known_ids=known)
        assert [p.entity_id for p in preds] == (
            [a.article_id for a in new_articles] + known
        )

    def test_known_ids_accept_any_node_type(self, fitted):
        detector, _ = fitted
        session = InferenceSession(detector)
        ids = [
            detector.features.creators.ids[0],
            detector.features.subjects.ids[0],
            detector.features.articles.ids[0],
        ]
        preds = session.predict(known_ids=ids, return_proba=True)
        assert [p.entity_id for p in preds] == ids
        for p in preds:
            assert p.proba.shape == (6,)

    def test_unknown_known_id_raises_keyerror(self, fitted):
        detector, _ = fitted
        session = InferenceSession(detector)
        with pytest.raises(KeyError, match="not a node"):
            session.predict(known_ids=["never_seen_id"])

    def test_deprecated_aliases_removed(self, fitted):
        # The pre-service aliases (predict_articles / predict_article /
        # predict_known) were deleted after a full deprecation cycle; the
        # unified predict() covers all three call shapes. Guard against
        # them creeping back.
        detector, _ = fitted
        session = InferenceSession(detector)
        for alias in ("predict_articles", "predict_article", "predict_known"):
            assert not hasattr(session, alias)
        import repro.serve.session as session_mod

        assert not hasattr(session_mod, "_warn_deprecated")
        assert not hasattr(session_mod, "_DEPRECATION_WARNED")

    def test_context_ids_prune_to_zero_state(self, fitted, new_articles):
        detector, _ = fitted
        pruned = InferenceSession(
            detector, context_ids={"creator": set(), "subject": set()}
        )
        full = InferenceSession(detector)
        ghost = [a for a in new_articles if a.article_id == "s3"]
        grounded = [a for a in new_articles if a.article_id != "s3"]
        # s3's creator/subject are unknown everywhere: pruning is a no-op.
        assert [p.class_index for p in pruned.predict(ghost)] \
            == [p.class_index for p in full.predict(ghost)]
        # Grounded articles lose their diffusion context under an empty
        # shard: logits must equal the all-unknown (zero state) path.
        stripped = [
            type(a)(a.article_id, a.text, a.label, "no_such_creator", [])
            if hasattr(a, "label")
            else ArticleRequest(a.article_id, a.text, "no_such_creator", [])
            for a in grounded
        ]
        a = pruned.predict(grounded, return_proba=True)
        b = full.predict(stripped, return_proba=True)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.proba, y.proba)
