"""Shard planning: deterministic routing, community closure, balance."""

import numpy as np
import pytest

from repro.core import FakeDetector, FakeDetectorConfig
from repro.graph import balanced_assignment, community_labels
from repro.serve import ShardPlan


@pytest.fixture(scope="module")
def fitted(request):
    dataset = request.getfixturevalue("tiny_dataset")
    split = request.getfixturevalue("tiny_split")
    config = FakeDetectorConfig(
        epochs=2, explicit_dim=24, vocab_size=400, max_seq_len=10,
        embed_dim=4, rnn_hidden=6, latent_dim=4, gdu_hidden=8, seed=0,
    )
    return FakeDetector(config).fit(dataset, split), dataset


@pytest.fixture(scope="module")
def plan(fitted):
    detector, _ = fitted
    return ShardPlan.from_detector(detector, 2)


class TestPartitionPrimitives:
    def test_community_labels_two_components(self):
        # creators {0,1} share subjects via articles; creator 2 is isolated
        # with subject 2. article_creator[i] = creator row of article i.
        article_creator = np.array([0, 1, 2])
        gather = np.array([0, 1, 1, 2])    # subject rows
        segment = np.array([0, 0, 1, 2])   # article rows
        creators, subjects, n = community_labels(
            3, 3, article_creator, gather, segment
        )
        assert n == 2
        assert creators[0] == creators[1] == subjects[0] == subjects[1]
        assert creators[2] == subjects[2]
        assert creators[0] != creators[2]

    def test_lonely_nodes_get_their_own_community(self):
        creators, subjects, n = community_labels(
            2, 1, np.array([], dtype=int), np.array([], dtype=int),
            np.array([], dtype=int),
        )
        assert n == 3
        assert len({creators[0], creators[1], subjects[0]}) == 3

    def test_balanced_assignment_is_lpt(self):
        # LPT: 5 → shard 0, 4 → shard 1, 3 → shard 1 (load 7? no: loads
        # after two are (5, 4) so 3 lands on shard 1), 1 → shard 0.
        assert balanced_assignment([5.0, 4.0, 3.0, 1.0], 2) == [0, 1, 1, 0]

    def test_balanced_assignment_deterministic_on_ties(self):
        a = balanced_assignment([1.0] * 6, 3)
        b = balanced_assignment([1.0] * 6, 3)
        assert a == b
        assert sorted(a.count(s) for s in range(3)) == [2, 2, 2]

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            balanced_assignment([1.0], 0)


class TestRoutingDeterminism:
    def test_same_article_same_shard_across_rebuilds(self, fitted, plan):
        detector, dataset = fitted
        rebuilt = ShardPlan.from_detector(detector, 2)
        for article in dataset.articles.values():
            assert plan.route(article) == rebuilt.route(article)

    def test_plan_survives_serialization(self, fitted, plan):
        _, dataset = fitted
        wire = ShardPlan.from_dict(plan.to_dict())
        assert wire.creator_shard == plan.creator_shard
        assert wire.subject_shard == plan.subject_shard
        assert wire.subject_context == plan.subject_context
        for article in dataset.articles.values():
            assert wire.route(article) == plan.route(article)

    def test_creator_rule_wins_over_subjects(self, plan):
        creator = next(iter(plan.creator_shard))
        shard = plan.creator_shard[creator]
        # any subject list, even from another shard, cannot override
        other = [s for s, sh in plan.subject_shard.items() if sh != shard]
        assert plan.shard_for("x", creator, other[:1]) == shard

    def test_subject_order_does_not_change_route(self, plan):
        subjects = list(plan.subject_shard)[:3]
        assert plan.shard_for("x", "nobody", subjects) \
            == plan.shard_for("x", "nobody", list(reversed(subjects)))

    def test_unknown_articles_hash_stably(self, plan):
        routes = {plan.shard_for(f"cold_{i}", "nobody", ["nothing"])
                  for i in range(64)}
        assert routes == {0, 1}  # the hash spreads cold traffic over shards
        for i in range(8):
            assert plan.shard_for(f"cold_{i}") == plan.shard_for(f"cold_{i}")

    def test_single_shard_plan_routes_everything_to_zero(self):
        single = ShardPlan.single()
        assert single.shard_for("anything", "anyone", ["any"]) == 0


class TestContextLocality:
    def test_training_articles_context_is_shard_local(self, fitted, plan):
        """The shard an article routes to holds its whole diffusion context.

        This is the property that makes shard-local GDU state lossless for
        corpus-grounded traffic, in both the community split and the
        creator-split (replicated subjects) fallback.
        """
        _, dataset = fitted
        contexts = [plan.context_ids(s) for s in range(plan.num_shards)]
        for article in dataset.articles.values():
            shard = plan.route(article)
            context = contexts[shard]
            if article.creator_id in plan.creator_shard:
                assert article.creator_id in context["creator"], article
                for subject in article.subject_ids:
                    if subject in plan.subject_shard:
                        assert subject in context["subject"], article

    def test_context_ids_cover_the_graph(self, fitted, plan):
        detector, _ = fitted
        ctx = [plan.context_ids(s) for s in range(plan.num_shards)]
        # creators are a true partition; subject state may be replicated
        assert ctx[0]["creator"].isdisjoint(ctx[1]["creator"])
        assert ctx[0]["creator"] | ctx[1]["creator"] \
            == set(detector.features.creators.ids)
        assert ctx[0]["subject"] | ctx[1]["subject"] \
            == set(detector.features.subjects.ids)

    def test_both_shards_carry_weight(self, plan):
        """The one-component corpus still splits (creator-level fallback)."""
        assert all(w > 0 for w in plan.shard_weights)

    def test_subject_home_is_in_its_context(self, plan):
        for subject, home in plan.subject_shard.items():
            assert home in plan.subject_context[subject]

    def test_context_ids_bounds_checked(self, plan):
        with pytest.raises(ValueError):
            plan.context_ids(2)

    def test_shard_weights_cover_all_articles(self, fitted, plan):
        _, dataset = fitted
        assert sum(plan.shard_weights) == len(dataset.articles)

    def test_unfitted_detector_rejected(self):
        with pytest.raises(RuntimeError):
            ShardPlan.from_detector(FakeDetector(), 2)

    def test_invalid_num_shards_rejected(self, fitted):
        detector, _ = fitted
        with pytest.raises(ValueError):
            ShardPlan.from_detector(detector, 0)
