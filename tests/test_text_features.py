"""Tests for discriminative word selection and bag-of-words features."""

import numpy as np
import pytest

from repro.text import (
    BagOfWordsExtractor,
    chi_squared_scores,
    frequency_ratio_scores,
    select_discriminative_words,
)


@pytest.fixture()
def labeled_docs():
    """'signal' appears only in positives, 'noise' only in negatives,
    'shared' in both."""
    docs, labels = [], []
    for _ in range(10):
        docs.append(["signal", "shared", "filler"])
        labels.append(1)
        docs.append(["noise", "shared", "filler"])
        labels.append(0)
    return docs, labels


class TestChiSquared:
    def test_discriminative_words_score_high(self, labeled_docs):
        docs, labels = labeled_docs
        scores = chi_squared_scores(docs, labels)
        assert scores["signal"] > scores["shared"]
        assert scores["noise"] > scores["shared"]

    def test_perfectly_shared_word_scores_zero(self, labeled_docs):
        docs, labels = labeled_docs
        scores = chi_squared_scores(docs, labels)
        assert scores["shared"] == pytest.approx(0.0)

    def test_min_count_filters(self, labeled_docs):
        docs, labels = labeled_docs
        docs = docs + [["hapax"]]
        labels = labels + [1]
        scores = chi_squared_scores(docs, labels, min_count=2)
        assert "hapax" not in scores

    def test_stop_words_excluded(self):
        docs = [["the", "signal"], ["the", "noise"]]
        scores = chi_squared_scores(docs, [1, 0], min_count=1)
        assert "the" not in scores

    def test_requires_binary_labels(self, labeled_docs):
        docs, _ = labeled_docs
        with pytest.raises(ValueError):
            chi_squared_scores(docs, [5] * len(docs))

    def test_empty_corpus(self):
        assert chi_squared_scores([], []) == {}

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            chi_squared_scores([["a"]], [1, 0])


class TestFrequencyRatio:
    def test_one_sided_words_score_high(self, labeled_docs):
        docs, labels = labeled_docs
        scores = frequency_ratio_scores(docs, labels)
        assert scores["signal"] > scores["shared"]

    def test_symmetric(self, labeled_docs):
        docs, labels = labeled_docs
        scores = frequency_ratio_scores(docs, labels)
        assert scores["signal"] == pytest.approx(scores["noise"])

    def test_scores_nonnegative(self, labeled_docs):
        docs, labels = labeled_docs
        assert all(v >= 0 for v in frequency_ratio_scores(docs, labels).values())


class TestSelectDiscriminativeWords:
    def test_picks_signal_words_first(self, labeled_docs):
        docs, labels = labeled_docs
        words = select_discriminative_words(docs, labels, size=2)
        assert set(words) == {"signal", "noise"}

    def test_multilevel_labels_binarized(self, labeled_docs):
        docs, _ = labeled_docs
        # Scores 5 (true-ish) and 1 (false-ish) instead of 1/0.
        labels = [5, 1] * 10
        words = select_discriminative_words(docs, labels, size=2)
        assert set(words) == {"signal", "noise"}

    def test_method_dispatch(self, labeled_docs):
        docs, labels = labeled_docs
        for method in ("chi2", "freq_ratio"):
            assert select_discriminative_words(docs, labels, 2, method=method)
        with pytest.raises(ValueError):
            select_discriminative_words(docs, labels, 2, method="mutual_info")

    def test_size_validation(self, labeled_docs):
        docs, labels = labeled_docs
        with pytest.raises(ValueError):
            select_discriminative_words(docs, labels, size=0)


class TestBagOfWordsExtractor:
    def test_counts(self):
        ext = BagOfWordsExtractor(["tax", "gun"])
        vec = ext.transform_one(["tax", "tax", "gun", "other"])
        np.testing.assert_allclose(vec, [2.0, 1.0])

    def test_unknown_words_ignored(self):
        ext = BagOfWordsExtractor(["tax"])
        np.testing.assert_allclose(ext.transform_one(["unrelated"]), [0.0])

    def test_batch_shape(self):
        ext = BagOfWordsExtractor(["a", "b", "c"])
        out = ext.transform([["a"], ["b", "c"], []])
        assert out.shape == (3, 3)

    def test_normalization(self):
        ext = BagOfWordsExtractor(["a", "b"], normalize=True)
        vec = ext.transform_one(["a", "a", "b", "b"])
        np.testing.assert_allclose(np.linalg.norm(vec), 1.0)

    def test_normalize_empty_doc_is_zero(self):
        ext = BagOfWordsExtractor(["a"], normalize=True)
        np.testing.assert_allclose(ext.transform_one([]), [0.0])

    def test_duplicate_words_rejected(self):
        with pytest.raises(ValueError):
            BagOfWordsExtractor(["a", "a"])

    def test_empty_word_set_rejected(self):
        with pytest.raises(ValueError):
            BagOfWordsExtractor([])

    def test_fit_selects_then_fills(self, labeled_docs):
        docs, labels = labeled_docs
        # Only 3 distinct non-stop words exist; request 3 so selection (2
        # discriminative) + frequency fill (1 shared) covers it.
        ext = BagOfWordsExtractor.fit(docs, labels, size=3, min_count=1)
        assert ext.dim == 3
        assert {"signal", "noise"} <= set(ext.words)

    def test_fit_dim_capped_when_corpus_small(self, labeled_docs):
        docs, labels = labeled_docs
        ext = BagOfWordsExtractor.fit(docs, labels, size=100, min_count=1)
        assert ext.dim <= 100
        assert ext.dim >= 3


class TestCsrTransform:
    """The sparse batch path (transform_csr) agrees with transform_one."""

    DOCS = [["a", "a", "b", "zz"], [], ["c"], ["b", "c", "b", "a"]]

    def test_counts_match_transform_one_exactly(self):
        ext = BagOfWordsExtractor(["a", "b", "c"])
        batch = ext.transform(self.DOCS)
        rows = np.stack([ext.transform_one(d) for d in self.DOCS])
        np.testing.assert_array_equal(batch, rows)

    def test_tfidf_and_normalize_match_transform_one(self):
        ext = BagOfWordsExtractor(
            ["a", "b", "c"], normalize=True, weighting="tfidf"
        ).fit_idf(self.DOCS)
        batch = ext.transform(self.DOCS)
        rows = np.stack([ext.transform_one(d) for d in self.DOCS])
        np.testing.assert_allclose(batch, rows, rtol=1e-15, atol=0)
        norms = np.linalg.norm(batch, axis=1)
        np.testing.assert_allclose(norms[[0, 2, 3]], 1.0)
        assert norms[1] == 0.0  # empty doc stays all-zero

    def test_csr_structure(self):
        ext = BagOfWordsExtractor(["a", "b", "c"])
        csr = ext.transform_csr(self.DOCS)
        assert csr.shape == (4, 3)
        assert csr.nnz == 6  # duplicates aggregated, unknowns dropped
        np.testing.assert_array_equal(csr.indptr, [0, 2, 2, 3, 6])
        np.testing.assert_array_equal(csr.row_ids(), [0, 0, 2, 3, 3, 3])
        np.testing.assert_array_equal(csr.to_dense(), ext.transform(self.DOCS))

    def test_csr_matmul_matches_dense(self, rng):
        ext = BagOfWordsExtractor(["a", "b", "c"], normalize=True)
        csr = ext.transform_csr(self.DOCS)
        weights = rng.standard_normal((3, 6))
        np.testing.assert_allclose(
            csr.matmul(weights), csr.to_dense() @ weights, atol=1e-12
        )
        with pytest.raises(ValueError):
            csr.matmul(rng.standard_normal((4, 6)))

    def test_tfidf_without_fit_raises_in_batch_path(self):
        ext = BagOfWordsExtractor(["a"], weighting="tfidf")
        with pytest.raises(RuntimeError):
            ext.transform([["a"]])

    def test_all_empty_batch(self):
        ext = BagOfWordsExtractor(["a", "b"], normalize=True)
        out = ext.transform([[], []])
        np.testing.assert_array_equal(out, np.zeros((2, 2)))
