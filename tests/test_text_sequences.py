"""Tests for padded index-sequence encoding."""

import numpy as np
import pytest

from repro.text import (
    PAD_INDEX,
    UNK_INDEX,
    Vocabulary,
    encode_batch,
    encode_sequence,
    infer_max_length,
    sequence_lengths,
)


@pytest.fixture()
def vocab():
    return Vocabulary.build([["alpha", "beta", "gamma", "delta"]])


class TestEncodeSequence:
    def test_padding(self, vocab):
        out = encode_sequence(["alpha", "beta"], vocab, max_length=5)
        assert out.shape == (5,)
        assert list(out[2:]) == [PAD_INDEX] * 3
        assert out[0] == vocab.index("alpha")

    def test_truncate_tail(self, vocab):
        tokens = ["alpha", "beta", "gamma", "delta"]
        out = encode_sequence(tokens, vocab, max_length=2, truncate="tail")
        assert list(out) == [vocab.index("alpha"), vocab.index("beta")]

    def test_truncate_head(self, vocab):
        tokens = ["alpha", "beta", "gamma", "delta"]
        out = encode_sequence(tokens, vocab, max_length=2, truncate="head")
        assert list(out) == [vocab.index("gamma"), vocab.index("delta")]

    def test_unknown_token(self, vocab):
        out = encode_sequence(["mystery"], vocab, max_length=2)
        assert out[0] == UNK_INDEX

    def test_validation(self, vocab):
        with pytest.raises(ValueError):
            encode_sequence(["alpha"], vocab, max_length=0)
        with pytest.raises(ValueError):
            encode_sequence(["alpha", "beta"], vocab, max_length=1, truncate="middle")

    def test_empty_tokens_all_pad(self, vocab):
        out = encode_sequence([], vocab, max_length=3)
        assert list(out) == [PAD_INDEX] * 3


class TestEncodeBatch:
    def test_shape_and_dtype(self, vocab):
        out = encode_batch([["alpha"], ["beta", "gamma"]], vocab, max_length=4)
        assert out.shape == (2, 4)
        assert out.dtype == np.int64

    def test_rows_match_single_encoding(self, vocab):
        docs = [["alpha", "beta"], ["gamma"]]
        batch = encode_batch(docs, vocab, max_length=3)
        for row, doc in zip(batch, docs):
            np.testing.assert_array_equal(row, encode_sequence(doc, vocab, 3))

    def test_empty_batch(self, vocab):
        assert encode_batch([], vocab, max_length=3).shape == (0, 3)


class TestSequenceLengths:
    def test_lengths(self, vocab):
        batch = encode_batch([["alpha"], ["beta", "gamma"], []], vocab, max_length=4)
        np.testing.assert_array_equal(sequence_lengths(batch), [1, 2, 0])


class TestInferMaxLength:
    def test_covers_percentile(self):
        docs = [["w"] * n for n in range(1, 101)]
        q = infer_max_length(docs, percentile=95.0, cap=1000)
        assert 94 <= q <= 96

    def test_cap_applies(self):
        docs = [["w"] * 500]
        assert infer_max_length(docs, cap=64) == 64

    def test_empty_corpus(self):
        assert infer_max_length([]) == 1

    def test_minimum_one(self):
        assert infer_max_length([[]]) == 1
