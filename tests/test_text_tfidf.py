"""Tests for TF-IDF weighting of explicit features."""

import numpy as np
import pytest

from repro.text import BagOfWordsExtractor


@pytest.fixture()
def corpus():
    # "common" in every doc, "rare" in one.
    return [
        ["common", "rare", "filler"],
        ["common", "filler"],
        ["common", "other"],
        ["common"],
    ]


class TestFitIdf:
    def test_rare_word_weighted_higher(self, corpus):
        ext = BagOfWordsExtractor(["common", "rare"], weighting="tfidf")
        ext.fit_idf(corpus)
        assert ext.idf[1] > ext.idf[0]

    def test_idf_positive(self, corpus):
        ext = BagOfWordsExtractor(["common", "rare"], weighting="tfidf")
        ext.fit_idf(corpus)
        assert (ext.idf > 0).all()

    def test_unseen_word_gets_max_idf(self, corpus):
        ext = BagOfWordsExtractor(["common", "ghost"], weighting="tfidf")
        ext.fit_idf(corpus)
        expected = np.log((1 + 4) / (1 + 0)) + 1
        assert ext.idf[1] == pytest.approx(expected)


class TestTransform:
    def test_tfidf_scales_counts(self, corpus):
        ext = BagOfWordsExtractor(["common", "rare"], weighting="tfidf")
        ext.fit_idf(corpus)
        vec = ext.transform_one(["common", "common", "rare"])
        np.testing.assert_allclose(vec, [2 * ext.idf[0], 1 * ext.idf[1]])

    def test_transform_without_fit_raises(self):
        ext = BagOfWordsExtractor(["a"], weighting="tfidf")
        with pytest.raises(RuntimeError):
            ext.transform_one(["a"])

    def test_count_mode_ignores_idf(self, corpus):
        ext = BagOfWordsExtractor(["common", "rare"], weighting="count")
        np.testing.assert_allclose(ext.transform_one(["common", "rare"]), [1, 1])

    def test_invalid_weighting(self):
        with pytest.raises(ValueError):
            BagOfWordsExtractor(["a"], weighting="bm25")

    def test_normalization_composes(self, corpus):
        ext = BagOfWordsExtractor(
            ["common", "rare"], weighting="tfidf", normalize=True
        )
        ext.fit_idf(corpus)
        vec = ext.transform_one(["common", "rare", "rare"])
        np.testing.assert_allclose(np.linalg.norm(vec), 1.0)


class TestFitIntegration:
    def test_fit_with_tfidf_sets_idf(self):
        docs = [["signal", "shared"], ["noise", "shared"]] * 6
        labels = [1, 0] * 6
        ext = BagOfWordsExtractor.fit(
            docs, labels, size=3, min_count=1, weighting="tfidf"
        )
        assert ext.idf is not None
        assert ext.transform(docs).shape == (12, ext.dim)

    def test_config_validation(self):
        from repro.core import FakeDetectorConfig

        with pytest.raises(ValueError):
            FakeDetectorConfig(explicit_weighting="bm25")
        FakeDetectorConfig(explicit_weighting="tfidf")
