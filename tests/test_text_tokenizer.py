"""Tests for tokenization and stop-word removal."""

from repro.text import STOP_WORDS, remove_stop_words, tokenize, tokenize_clean


class TestTokenize:
    def test_basic_split(self):
        assert tokenize("The quick brown fox") == ["the", "quick", "brown", "fox"]

    def test_punctuation_dropped(self):
        assert tokenize("Hello, world! (Really?)") == ["hello", "world", "really"]

    def test_apostrophes_kept_inside_words(self):
        assert tokenize("don't stop") == ["don't", "stop"]

    def test_numbers_kept(self):
        assert tokenize("raised taxes 45 percent in 2016") == [
            "raised", "taxes", "45", "percent", "in", "2016",
        ]

    def test_case_preserved_when_requested(self):
        assert tokenize("Obama Said", lowercase=False) == ["Obama", "Said"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   \t\n ") == []


class TestStopWords:
    def test_common_words_in_list(self):
        for word in ("the", "and", "is", "of", "to"):
            assert word in STOP_WORDS

    def test_content_words_not_in_list(self):
        for word in ("president", "tax", "obamacare", "economy"):
            assert word not in STOP_WORDS

    def test_remove_stop_words(self):
        tokens = ["the", "president", "is", "running"]
        assert remove_stop_words(tokens) == ["president", "running"]

    def test_tokenize_clean(self):
        assert tokenize_clean("The president said that taxes are too high") == [
            "president", "said", "taxes", "high",
        ]

    def test_stop_words_frozen(self):
        assert isinstance(STOP_WORDS, frozenset)
