"""Tests for the Vocabulary token dictionary."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import PAD_INDEX, PAD_TOKEN, UNK_INDEX, UNK_TOKEN, Vocabulary


@pytest.fixture()
def vocab():
    docs = [["apple", "banana", "apple"], ["banana", "cherry"], ["apple"]]
    return Vocabulary.build(docs)


class TestBuild:
    def test_specials_reserved(self, vocab):
        assert vocab.index(PAD_TOKEN) == PAD_INDEX
        assert vocab.index(UNK_TOKEN) == UNK_INDEX

    def test_frequency_ordering(self, vocab):
        # apple (3) before banana (2) before cherry (1)
        assert vocab.index("apple") < vocab.index("banana") < vocab.index("cherry")

    def test_len_includes_specials(self, vocab):
        assert len(vocab) == 5

    def test_contains(self, vocab):
        assert "apple" in vocab
        assert "durian" not in vocab

    def test_unknown_maps_to_unk(self, vocab):
        assert vocab.index("durian") == UNK_INDEX

    def test_max_size_truncates(self):
        docs = [[f"w{i}" for i in range(100)]]
        vocab = Vocabulary.build(docs, max_size=10)
        assert len(vocab) == 12  # 10 + 2 specials

    def test_min_count_filters(self):
        docs = [["rare"], ["common", "common"]]
        vocab = Vocabulary.build(docs, min_count=2)
        assert "common" in vocab
        assert "rare" not in vocab

    def test_deterministic_tie_break(self):
        # Equal counts -> lexicographic order, stable across runs.
        docs = [["zebra", "apple"]]
        a = Vocabulary.build(docs)
        b = Vocabulary.build(docs)
        assert a.tokens == b.tokens
        assert a.index("apple") < a.index("zebra")

    def test_validation(self):
        with pytest.raises(ValueError):
            Vocabulary(max_size=0)
        with pytest.raises(ValueError):
            Vocabulary(min_count=0)


class TestEncodeDecode:
    def test_encode(self, vocab):
        indices = vocab.encode(["apple", "durian"])
        assert indices == [vocab.index("apple"), UNK_INDEX]

    def test_decode_drops_pads(self, vocab):
        tokens = vocab.decode([vocab.index("apple"), PAD_INDEX, vocab.index("banana")])
        assert tokens == ["apple", "banana"]

    def test_token_lookup(self, vocab):
        assert vocab.token(vocab.index("cherry")) == "cherry"

    def test_most_common(self, vocab):
        assert vocab.most_common(1) == [("apple", 3)]


class TestPersistence:
    def test_roundtrip(self, vocab, tmp_path):
        path = tmp_path / "vocab.json"
        vocab.save(path)
        loaded = Vocabulary.load(path)
        assert loaded.tokens == vocab.tokens
        assert loaded.counts == vocab.counts
        assert loaded.index("banana") == vocab.index("banana")


token_strategy = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=0x7F),
    min_size=1,
    max_size=8,
)


@given(st.lists(st.lists(token_strategy, min_size=0, max_size=10), min_size=0, max_size=8))
@settings(max_examples=50, deadline=None)
def test_property_encode_decode_roundtrip(docs):
    """Every in-vocabulary token survives an encode/decode round trip."""
    vocab = Vocabulary.build(docs)
    for doc in docs:
        decoded = vocab.decode(vocab.encode(doc))
        assert decoded == list(doc)  # all tokens known, no pads introduced


@given(st.lists(st.lists(token_strategy, min_size=1, max_size=10), min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_property_indices_unique_and_dense(docs):
    vocab = Vocabulary.build(docs)
    indices = [vocab.index(t) for t in vocab.tokens]
    assert indices == list(range(len(vocab)))
