"""Tests for the generator's word pools (signal-structure invariants)."""

from repro.data import wordpools as wp
from repro.text import STOP_WORDS


class TestPools:
    def test_label_pools_disjoint(self):
        assert not (set(wp.TRUE_LEANING_WORDS) & set(wp.FALSE_LEANING_WORDS))

    def test_label_pools_disjoint_from_shared(self):
        shared = set(wp.SHARED_WORDS)
        assert not (set(wp.TRUE_LEANING_WORDS) & shared)
        assert not (set(wp.FALSE_LEANING_WORDS) & shared)

    def test_no_stop_words_in_signal_pools(self):
        for pool in (wp.TRUE_LEANING_WORDS, wp.FALSE_LEANING_WORDS):
            assert not (set(pool) & STOP_WORDS)

    def test_paper_fig1b_words_present(self):
        # Fig 1(b): words the paper highlights for True articles.
        for word in ("president", "income", "tax", "american"):
            assert word in wp.TRUE_LEANING_WORDS

    def test_paper_fig1c_words_present(self):
        # Fig 1(c): words the paper highlights for False articles.
        for word in ("obama", "republican", "clinton", "obamacare", "gun"):
            assert word in wp.FALSE_LEANING_WORDS

    def test_every_named_subject_has_topic_words(self):
        for name in wp.TOP_SUBJECT_NAMES:
            pool = wp.SUBJECT_TOPIC_WORDS[name]
            assert len(pool) >= 8
            assert len(set(pool)) == len(pool)

    def test_pools_single_tokens(self):
        """Pool entries must survive tokenization as single tokens (else the
        planted signal would shatter)."""
        from repro.text import tokenize

        for pool in (wp.TRUE_LEANING_WORDS, wp.FALSE_LEANING_WORDS, wp.SHARED_WORDS):
            for word in pool:
                assert tokenize(word) == [word], word

    def test_generic_tail_pools_deterministic(self):
        assert wp.generic_subject_topic_words(21) == wp.generic_subject_topic_words(21)
        assert wp.generic_subject_topic_words(1) != wp.generic_subject_topic_words(2)
